#include <cstdio>
#include <gtest/gtest.h>

#include "odb/buffer_pool.h"
#include "odb/catalog.h"
#include "odb/heap_file.h"
#include "odb/pager.h"
#include "odb/slotted_page.h"

namespace ode::odb {
namespace {

std::string TempPath(const std::string& tag) {
  return testing::TempDir() + "/odeview_" + tag + "_" +
         std::to_string(::testing::UnitTest::GetInstance()
                             ->random_seed()) +
         std::to_string(reinterpret_cast<uintptr_t>(&tag) % 100000) + ".db";
}

// --- Pager ---------------------------------------------------------------

template <typename T>
std::unique_ptr<Pager> MakePager(const std::string& path);

template <>
std::unique_ptr<Pager> MakePager<MemPager>(const std::string&) {
  return std::make_unique<MemPager>();
}

template <>
std::unique_ptr<Pager> MakePager<FilePager>(const std::string& path) {
  return std::move(*FilePager::Open(path, /*create=*/true));
}

template <typename T>
class PagerTest : public ::testing::Test {
 protected:
  PagerTest() : path_(TempPath("pager")), pager_(MakePager<T>(path_)) {}
  ~PagerTest() override { std::remove(path_.c_str()); }

  std::string path_;
  std::unique_ptr<Pager> pager_;
};

using PagerTypes = ::testing::Types<MemPager, FilePager>;
TYPED_TEST_SUITE(PagerTest, PagerTypes);

TYPED_TEST(PagerTest, AllocateGrowsAndZeroes) {
  EXPECT_EQ(this->pager_->page_count(), 0u);
  PageId id = *this->pager_->Allocate();
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(this->pager_->page_count(), 1u);
  Page page;
  ASSERT_TRUE(this->pager_->Read(id, &page).ok());
  for (char c : page.data) EXPECT_EQ(c, 0);
}

TYPED_TEST(PagerTest, WriteReadRoundTrip) {
  PageId id = *this->pager_->Allocate();
  Page page;
  page.Zero();
  page.bytes()[0] = 'x';
  page.bytes()[kPageSize - 1] = 'y';
  ASSERT_TRUE(this->pager_->Write(id, page).ok());
  Page read;
  ASSERT_TRUE(this->pager_->Read(id, &read).ok());
  EXPECT_EQ(read.bytes()[0], 'x');
  EXPECT_EQ(read.bytes()[kPageSize - 1], 'y');
}

TYPED_TEST(PagerTest, OutOfRangeRejected) {
  Page page;
  EXPECT_FALSE(this->pager_->Read(0, &page).ok());
  EXPECT_FALSE(this->pager_->Read(42, &page).ok());
}

TYPED_TEST(PagerTest, ManyPagesKeepIdentity) {
  constexpr int kPages = 50;
  for (int i = 0; i < kPages; ++i) {
    PageId id = *this->pager_->Allocate();
    Page page;
    page.Zero();
    page.bytes()[7] = static_cast<char>(i);
    ASSERT_TRUE(this->pager_->Write(id, page).ok());
  }
  for (int i = 0; i < kPages; ++i) {
    Page page;
    ASSERT_TRUE(this->pager_->Read(static_cast<PageId>(i), &page).ok());
    EXPECT_EQ(page.bytes()[7], static_cast<char>(i));
  }
}

TEST(FilePagerTest, ReopenKeepsPages) {
  std::string path = TempPath("reopen");
  {
    auto pager = std::move(*FilePager::Open(path, /*create=*/true));
    PageId id = *pager->Allocate();
    Page page;
    page.Zero();
    page.bytes()[100] = 'z';
    ASSERT_TRUE(pager->Write(id, page).ok());
    ASSERT_TRUE(pager->Sync().ok());
  }
  auto reopened = FilePager::Open(path, /*create=*/false);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->page_count(), 1u);
  Page page;
  ASSERT_TRUE((*reopened)->Read(0, &page).ok());
  EXPECT_EQ(page.bytes()[100], 'z');
  std::remove(path.c_str());
}

TEST(FilePagerTest, MissingFileRejected) {
  EXPECT_FALSE(FilePager::Open("/nonexistent/dir/x.db", false).ok());
}

// --- Buffer pool -----------------------------------------------------------

TEST(BufferPoolTest, FetchCachesPages) {
  MemPager pager;
  BufferPool pool(&pager, 4);
  PageId id = *pager.Allocate();
  {
    Result<PageHandle> handle = pool.Fetch(id);
    ASSERT_TRUE(handle.ok());
    handle->page()->bytes()[0] = 'a';
    handle->MarkDirty();
  }
  {
    Result<PageHandle> handle = pool.Fetch(id);
    ASSERT_TRUE(handle.ok());
    EXPECT_EQ(handle->page()->bytes()[0], 'a');
  }
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(BufferPoolTest, DirtyPageWrittenBackOnEviction) {
  MemPager pager;
  BufferPool pool(&pager, 2);
  PageId a = *pager.Allocate();
  PageId b = *pager.Allocate();
  PageId c = *pager.Allocate();
  {
    PageHandle handle = *pool.Fetch(a);
    handle.page()->bytes()[1] = 'q';
    handle.MarkDirty();
  }
  (void)*pool.Fetch(b);
  (void)*pool.Fetch(c);  // evicts a
  Page raw;
  ASSERT_TRUE(pager.Read(a, &raw).ok());
  EXPECT_EQ(raw.bytes()[1], 'q');
  EXPECT_GE(pool.stats().evictions, 1u);
  EXPECT_GE(pool.stats().writebacks, 1u);
}

TEST(BufferPoolTest, PinnedPagesNotEvicted) {
  MemPager pager;
  BufferPool pool(&pager, 2);
  PageId a = *pager.Allocate();
  PageId b = *pager.Allocate();
  PageId c = *pager.Allocate();
  PageHandle ha = *pool.Fetch(a);
  PageHandle hb = *pool.Fetch(b);
  // Both frames pinned: a third fetch must fail, not evict.
  Result<PageHandle> hc = pool.Fetch(c);
  EXPECT_FALSE(hc.ok());
  EXPECT_EQ(hc.status().code(), StatusCode::kFailedPrecondition);
  hb.Release();
  Result<PageHandle> hc2 = pool.Fetch(c);
  EXPECT_TRUE(hc2.ok());
}

TEST(BufferPoolTest, LruEvictsColdestFirst) {
  MemPager pager;
  BufferPool pool(&pager, 2);
  PageId a = *pager.Allocate();
  PageId b = *pager.Allocate();
  PageId c = *pager.Allocate();
  (void)*pool.Fetch(a);
  (void)*pool.Fetch(b);
  (void)*pool.Fetch(a);  // a is now hot
  (void)*pool.Fetch(c);  // must evict b
  uint64_t misses = pool.stats().misses;
  (void)*pool.Fetch(a);  // still cached
  EXPECT_EQ(pool.stats().misses, misses);
  (void)*pool.Fetch(b);  // was evicted
  EXPECT_EQ(pool.stats().misses, misses + 1);
}

TEST(BufferPoolTest, NewPageIsZeroedAndDirty) {
  MemPager pager;
  BufferPool pool(&pager, 2);
  {
    PageHandle handle = *pool.NewPage();
    EXPECT_EQ(handle.id(), 0u);
    for (char cbyte : handle.page()->data) EXPECT_EQ(cbyte, 0);
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pager.page_count(), 1u);
}

TEST(BufferPoolTest, MoveTransfersPin) {
  MemPager pager;
  BufferPool pool(&pager, 1);
  PageId a = *pager.Allocate();
  PageHandle h1 = *pool.Fetch(a);
  PageHandle h2 = std::move(h1);
  EXPECT_FALSE(h1.valid());
  EXPECT_TRUE(h2.valid());
  h2.Release();
  // The pin is gone: a different page can now occupy the single frame.
  PageId b = *pager.Allocate();
  EXPECT_TRUE(pool.Fetch(b).ok());
}

// --- Slotted page ------------------------------------------------------------

class SlottedPageTest : public ::testing::Test {
 protected:
  SlottedPageTest() : sp_(&page_) { sp_.Init(); }
  Page page_;
  SlottedPage sp_;
};

TEST_F(SlottedPageTest, InitEmpty) {
  EXPECT_EQ(sp_.slot_count(), 0);
  EXPECT_EQ(sp_.live_count(), 0);
  EXPECT_EQ(sp_.next_page(), kNoPage);
  EXPECT_GT(sp_.FreeSpace(), kPageSize - 32);
}

TEST_F(SlottedPageTest, InsertAndGet) {
  uint16_t slot = *sp_.Insert("hello");
  EXPECT_EQ(*sp_.Get(slot), "hello");
  EXPECT_EQ(sp_.live_count(), 1);
}

TEST_F(SlottedPageTest, MultipleRecordsKeepIdentity) {
  std::vector<uint16_t> slots;
  for (int i = 0; i < 20; ++i) {
    slots.push_back(*sp_.Insert("record-" + std::to_string(i)));
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(*sp_.Get(slots[static_cast<size_t>(i)]),
              "record-" + std::to_string(i));
  }
}

TEST_F(SlottedPageTest, DeleteTombstones) {
  uint16_t a = *sp_.Insert("aaa");
  uint16_t b = *sp_.Insert("bbb");
  ASSERT_TRUE(sp_.Delete(a).ok());
  EXPECT_TRUE(sp_.Get(a).status().IsNotFound());
  EXPECT_EQ(*sp_.Get(b), "bbb");
  EXPECT_EQ(sp_.live_count(), 1);
  EXPECT_TRUE(sp_.Delete(a).IsNotFound());  // double delete
  EXPECT_TRUE(sp_.Delete(99).IsNotFound());
}

TEST_F(SlottedPageTest, TombstoneSlotReused) {
  uint16_t a = *sp_.Insert("aaa");
  (void)*sp_.Insert("bbb");
  ASSERT_TRUE(sp_.Delete(a).ok());
  uint16_t c = *sp_.Insert("ccc");
  EXPECT_EQ(c, a);  // the tombstone slot is recycled
  EXPECT_EQ(sp_.slot_count(), 2);
}

TEST_F(SlottedPageTest, UpdateInPlaceAndShrink) {
  uint16_t slot = *sp_.Insert("0123456789");
  ASSERT_TRUE(sp_.Update(slot, "abc").ok());
  EXPECT_EQ(*sp_.Get(slot), "abc");
}

TEST_F(SlottedPageTest, UpdateGrowWithinPage) {
  uint16_t slot = *sp_.Insert("short");
  ASSERT_TRUE(sp_.Update(slot, std::string(500, 'x')).ok());
  EXPECT_EQ(sp_.Get(slot)->size(), 500u);
}

TEST_F(SlottedPageTest, UpdateGrowBeyondPageFails) {
  // Fill the page almost completely.
  uint16_t slot = *sp_.Insert(std::string(1000, 'a'));
  (void)*sp_.Insert(std::string(2900, 'b'));
  Status grown = sp_.Update(slot, std::string(2000, 'c'));
  EXPECT_TRUE(grown.IsOutOfRange());
  // The original record must still be intact after the failed grow.
  EXPECT_EQ(sp_.Get(slot)->size(), 1000u);
}

TEST_F(SlottedPageTest, FullPageRejectsInsert) {
  int inserted = 0;
  while (sp_.Insert(std::string(100, 'x')).ok()) ++inserted;
  EXPECT_GT(inserted, 30);
  EXPECT_TRUE(sp_.Insert(std::string(100, 'y')).status().IsOutOfRange());
  // A smaller record may still fit.
  EXPECT_TRUE(sp_.Insert("tiny").ok());
}

TEST_F(SlottedPageTest, OversizeRecordRejected) {
  EXPECT_TRUE(sp_.Insert(std::string(kPageSize, 'x'))
                  .status()
                  .IsInvalidArgument());
}

TEST_F(SlottedPageTest, CompactionRecoversDeletedSpace) {
  std::vector<uint16_t> slots;
  while (true) {
    Result<uint16_t> slot = sp_.Insert(std::string(200, 'x'));
    if (!slot.ok()) break;
    slots.push_back(*slot);
  }
  // Delete every other record; a 350B insert needs compaction.
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(sp_.Delete(slots[i]).ok());
  }
  EXPECT_TRUE(sp_.Insert(std::string(350, 'y')).ok());
  // Survivors are intact after compaction.
  for (size_t i = 1; i < slots.size(); i += 2) {
    EXPECT_EQ(sp_.Get(slots[i])->size(), 200u);
  }
}

TEST_F(SlottedPageTest, NextPageChainField) {
  sp_.set_next_page(42);
  EXPECT_EQ(sp_.next_page(), 42u);
}

TEST_F(SlottedPageTest, EmptyRecordSupported) {
  uint16_t slot = *sp_.Insert("");
  EXPECT_EQ(sp_.Get(slot)->size(), 0u);
  EXPECT_EQ(sp_.live_count(), 1);
}

// --- Heap file ----------------------------------------------------------------

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest() : pool_(&pager_, 16), free_list_(&pool_, kNoPage) {}
  MemPager pager_;
  BufferPool pool_;
  FreeList free_list_;
};

TEST_F(HeapFileTest, InsertGetDelete) {
  HeapFile heap = *HeapFile::Create(&pool_, &free_list_);
  ASSERT_TRUE(heap.Insert(1, "alpha").ok());
  ASSERT_TRUE(heap.Insert(2, "beta").ok());
  EXPECT_EQ(*heap.Get(1), "alpha");
  EXPECT_EQ(*heap.Get(2), "beta");
  EXPECT_EQ(heap.count(), 2u);
  ASSERT_TRUE(heap.Delete(1).ok());
  EXPECT_TRUE(heap.Get(1).status().IsNotFound());
  EXPECT_EQ(heap.count(), 1u);
}

TEST_F(HeapFileTest, DuplicateIdRejected) {
  HeapFile heap = *HeapFile::Create(&pool_, &free_list_);
  ASSERT_TRUE(heap.Insert(7, "x").ok());
  EXPECT_EQ(heap.Insert(7, "y").code(), StatusCode::kAlreadyExists);
}

TEST_F(HeapFileTest, SpillsAcrossPages) {
  HeapFile heap = *HeapFile::Create(&pool_, &free_list_);
  const std::string payload(600, 'p');
  for (uint64_t i = 1; i <= 40; ++i) {
    ASSERT_TRUE(heap.Insert(i, payload + std::to_string(i)).ok());
  }
  EXPECT_GT(*heap.PageCount(), 5u);
  for (uint64_t i = 1; i <= 40; ++i) {
    EXPECT_EQ(*heap.Get(i), payload + std::to_string(i));
  }
}

TEST_F(HeapFileTest, SequencingInIdOrder) {
  HeapFile heap = *HeapFile::Create(&pool_, &free_list_);
  for (uint64_t id : {5, 1, 9, 3}) {
    ASSERT_TRUE(heap.Insert(id, "v" + std::to_string(id)).ok());
  }
  EXPECT_EQ(*heap.FirstId(), 1u);
  EXPECT_EQ(*heap.LastId(), 9u);
  EXPECT_EQ(*heap.NextId(1), 3u);
  EXPECT_EQ(*heap.NextId(3), 5u);
  EXPECT_EQ(*heap.PrevId(5), 3u);
  EXPECT_TRUE(heap.NextId(9).status().IsOutOfRange());
  EXPECT_TRUE(heap.PrevId(1).status().IsOutOfRange());
  EXPECT_EQ(heap.AllIds(), (std::vector<uint64_t>{1, 3, 5, 9}));
}

TEST_F(HeapFileTest, EmptyHeapSequencing) {
  HeapFile heap = *HeapFile::Create(&pool_, &free_list_);
  EXPECT_TRUE(heap.FirstId().status().IsNotFound());
  EXPECT_TRUE(heap.LastId().status().IsNotFound());
}

TEST_F(HeapFileTest, UpdateInPlaceAndRelocation) {
  HeapFile heap = *HeapFile::Create(&pool_, &free_list_);
  ASSERT_TRUE(heap.Insert(1, "small").ok());
  // Fill the first page so a grown record must relocate.
  for (uint64_t i = 2; i <= 8; ++i) {
    ASSERT_TRUE(heap.Insert(i, std::string(500, 'f')).ok());
  }
  ASSERT_TRUE(heap.Update(1, std::string(3000, 'G')).ok());
  EXPECT_EQ(heap.Get(1)->size(), 3000u);
  EXPECT_EQ(heap.count(), 8u);
  ASSERT_TRUE(heap.Update(1, "tiny-again").ok());
  EXPECT_EQ(*heap.Get(1), "tiny-again");
}

TEST_F(HeapFileTest, OpenRebuildsDirectory) {
  PageId first_page;
  {
    HeapFile heap = *HeapFile::Create(&pool_, &free_list_);
    first_page = heap.first_page();
    for (uint64_t i = 1; i <= 30; ++i) {
      ASSERT_TRUE(heap.Insert(i, "payload" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(heap.Delete(15).ok());
  }
  Result<HeapFile> reopened = HeapFile::Open(&pool_, &free_list_, first_page);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->count(), 29u);
  EXPECT_EQ(*reopened->Get(7), "payload7");
  EXPECT_TRUE(reopened->Get(15).status().IsNotFound());
}

TEST_F(HeapFileTest, OversizeObjectSpillsToOverflow) {
  HeapFile heap = *HeapFile::Create(&pool_, &free_list_);
  std::string big(3 * kPageSize + 500, 'x');
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + i % 26);
  }
  ASSERT_TRUE(heap.Insert(1, big).ok());
  ASSERT_TRUE(heap.Insert(2, "small").ok());
  EXPECT_EQ(*heap.OverflowCount(), 1u);
  EXPECT_EQ(*heap.Get(1), big);
  EXPECT_EQ(*heap.Get(2), "small");
}

TEST_F(HeapFileTest, OverflowFreedOnDelete) {
  HeapFile heap = *HeapFile::Create(&pool_, &free_list_);
  ASSERT_TRUE(heap.Insert(1, std::string(5 * kPageSize, 'q')).ok());
  uint32_t free_before = *free_list_.Size();
  ASSERT_TRUE(heap.Delete(1).ok());
  // The overflow chain (>= 5 pages) returns to the free list.
  EXPECT_GE(*free_list_.Size(), free_before + 5);
}

TEST_F(HeapFileTest, UpdateTransitionsBetweenInlineAndOverflow) {
  HeapFile heap = *HeapFile::Create(&pool_, &free_list_);
  ASSERT_TRUE(heap.Insert(1, "tiny").ok());
  EXPECT_EQ(*heap.OverflowCount(), 0u);
  std::string big(2 * kPageSize, 'B');
  ASSERT_TRUE(heap.Update(1, big).ok());
  EXPECT_EQ(*heap.OverflowCount(), 1u);
  EXPECT_EQ(*heap.Get(1), big);
  ASSERT_TRUE(heap.Update(1, "tiny again").ok());
  EXPECT_EQ(*heap.OverflowCount(), 0u);
  EXPECT_EQ(*heap.Get(1), "tiny again");
  // The freed chain is reused by the next spill instead of growing
  // the file.
  uint32_t pages_before = pager_.page_count();
  ASSERT_TRUE(heap.Update(1, big).ok());
  EXPECT_LE(pager_.page_count(), pages_before + 1);
}

TEST_F(HeapFileTest, OverflowSurvivesReopen) {
  std::string big(2 * kPageSize + 77, 'z');
  PageId first_page;
  {
    HeapFile heap = *HeapFile::Create(&pool_, &free_list_);
    first_page = heap.first_page();
    ASSERT_TRUE(heap.Insert(1, big).ok());
    ASSERT_TRUE(heap.Insert(2, "inline").ok());
  }
  HeapFile reopened = *HeapFile::Open(&pool_, &free_list_, first_page);
  EXPECT_EQ(reopened.count(), 2u);
  EXPECT_EQ(*reopened.Get(1), big);
  EXPECT_EQ(*reopened.Get(2), "inline");
}

// --- Free list and blobs --------------------------------------------------------

TEST(FreeListTest, AcquireReleaseCycle) {
  MemPager pager;
  BufferPool pool(&pager, 8);
  FreeList free_list(&pool, kNoPage);
  PageId a = *free_list.Acquire();
  PageId b = *free_list.Acquire();
  EXPECT_NE(a, b);
  ASSERT_TRUE(free_list.Release(a).ok());
  EXPECT_EQ(*free_list.Size(), 1u);
  PageId c = *free_list.Acquire();  // reuses a
  EXPECT_EQ(c, a);
  EXPECT_EQ(*free_list.Size(), 0u);
  ASSERT_TRUE(free_list.Release(b).ok());
  ASSERT_TRUE(free_list.Release(c).ok());
  EXPECT_EQ(*free_list.Size(), 2u);
}

TEST(BlobTest, RoundTripSmallAndMultiPage) {
  MemPager pager;
  BufferPool pool(&pager, 16);
  FreeList free_list(&pool, kNoPage);
  for (size_t size : {size_t{0}, size_t{10}, kPageSize - 6, kPageSize,
                      3 * kPageSize + 123}) {
    std::string data;
    for (size_t i = 0; i < size; ++i) {
      data.push_back(static_cast<char>('a' + i % 26));
    }
    Result<PageId> head = WriteBlob(&pool, &free_list, data);
    ASSERT_TRUE(head.ok());
    Result<std::string> read = ReadBlob(&pool, *head);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(*read, data) << "size " << size;
    ASSERT_TRUE(FreeBlob(&pool, &free_list, *head).ok());
  }
  // All freed pages are reusable.
  EXPECT_GT(*free_list.Size(), 0u);
}

// --- Catalog -----------------------------------------------------------------------

TEST(CatalogTest, FormatAndLoad) {
  MemPager pager;
  BufferPool pool(&pager, 16);
  {
    Result<Catalog> catalog = Catalog::Format(&pool, "lab");
    ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
    EXPECT_EQ(catalog->db_name(), "lab");
    ClassDef def;
    def.name = "employee";
    ASSERT_TRUE(catalog->mutable_schema()->AddClass(def).ok());
    ASSERT_TRUE(catalog->AddCluster("employee", 5).ok());
    ASSERT_TRUE(catalog->Persist().ok());
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  Result<Catalog> loaded = Catalog::Load(&pool);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->db_name(), "lab");
  EXPECT_TRUE(loaded->schema().Contains("employee"));
  Result<const ClusterInfo*> cluster = loaded->FindCluster("employee");
  ASSERT_TRUE(cluster.ok());
  EXPECT_EQ((*cluster)->first_page, 5u);
}

TEST(CatalogTest, LoadRejectsBadMagic) {
  MemPager pager;
  BufferPool pool(&pager, 4);
  (void)*pool.NewPage();  // a zeroed page 0
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_TRUE(Catalog::Load(&pool).status().IsCorruption());
}

TEST(CatalogTest, LocalIdsMonotonic) {
  MemPager pager;
  BufferPool pool(&pager, 8);
  Catalog catalog = *Catalog::Format(&pool, "t");
  ClusterId id = *catalog.AddCluster("c", 1);
  EXPECT_EQ(*catalog.NextLocalId(id), 1u);
  EXPECT_EQ(*catalog.NextLocalId(id), 2u);
  ASSERT_TRUE(catalog.BumpNextLocalId(id, 100).ok());
  EXPECT_EQ(*catalog.NextLocalId(id), 100u);
  ASSERT_TRUE(catalog.BumpNextLocalId(id, 5).ok());  // never lowers
  EXPECT_EQ(*catalog.NextLocalId(id), 101u);
}

TEST(CatalogTest, DuplicateClusterRejected) {
  MemPager pager;
  BufferPool pool(&pager, 8);
  Catalog catalog = *Catalog::Format(&pool, "t");
  ASSERT_TRUE(catalog.AddCluster("c", 1).ok());
  EXPECT_EQ(catalog.AddCluster("c", 2).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, RepeatedPersistRecyclesPages) {
  MemPager pager;
  BufferPool pool(&pager, 16);
  Catalog catalog = *Catalog::Format(&pool, "t");
  ASSERT_TRUE(catalog.Persist().ok());
  uint32_t pages_before = pager.page_count();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(catalog.Persist().ok());
  }
  // The catalog blob is rewritten every time, but freed pages must be
  // recycled: the file may grow a little, never by 50 pages.
  EXPECT_LE(pager.page_count(), pages_before + 2);
}

}  // namespace
}  // namespace ode::odb
