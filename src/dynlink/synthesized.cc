#include "dynlink/synthesized.h"

#include <sstream>

namespace ode::dynlink {

namespace {

bool IsScalar(const odb::TypeRef& type) {
  using Kind = odb::TypeRef::Kind;
  return type.kind == Kind::kInt || type.kind == Kind::kReal ||
         type.kind == Kind::kBool || type.kind == Kind::kString;
}

/// One line (or indented block) for an attribute value.
void AppendAttribute(std::ostringstream& out, const std::string& name,
                     const odb::Value& value) {
  using odb::ValueKind;
  switch (value.kind()) {
    case ValueKind::kStruct:
    case ValueKind::kSet:
    case ValueKind::kArray:
      out << name << ":\n" << value.ToIndentedString(1);
      break;
    case ValueKind::kRef:
      if (value.AsRef().IsNull()) {
        out << name << ": <no " << value.RefClass() << ">\n";
      } else {
        out << name << ": -> " << value.RefClass() << " "
            << value.AsRef().ToString() << "\n";
      }
      break;
    case ValueKind::kBlob:
      out << name << ": <blob " << value.AsString().size() << "B>\n";
      break;
    default:
      out << name << ": " << value.ToString() << "\n";
  }
}

}  // namespace

Result<std::string> FormatObjectText(const odb::Schema& schema,
                                     const odb::ObjectBuffer& object,
                                     const std::vector<std::string>& attrs,
                                     const std::vector<bool>& mask,
                                     bool privileged) {
  ODE_ASSIGN_OR_RETURN(std::vector<odb::MemberDef> members,
                       schema.AllMembers(object.class_name));
  std::ostringstream out;
  out << object.class_name << " " << object.oid.ToString() << " (v"
      << object.version << ")\n";
  for (const odb::MemberDef& member : members) {
    if (!privileged && member.access != odb::Access::kPublic) continue;
    if (!AttributeSelected(attrs, mask, member.name)) continue;
    const odb::Value* value = object.value.FindField(member.name);
    if (value == nullptr) continue;
    AppendAttribute(out, member.name, *value);
  }
  return out.str();
}

DisplayFunction SynthesizeDisplayFunction(const odb::Schema& schema,
                                          const std::string& class_name,
                                          bool privileged) {
  // Capture by value: the display function must outlive this call.
  const odb::Schema* schema_ptr = &schema;
  return [schema_ptr, class_name, privileged](
             const odb::ObjectBuffer& object,
             const std::vector<std::string>& attributes,
             const std::vector<bool>& mask) -> Result<DisplayResources> {
    if (object.class_name != class_name) {
      return Status::DisplayFault(
          "synthesized display for '" + class_name +
          "' invoked on an object of class '" + object.class_name + "'");
    }
    ODE_ASSIGN_OR_RETURN(
        std::string text,
        FormatObjectText(*schema_ptr, object, attributes, mask, privileged));
    DisplayResources resources;
    WindowSpec window;
    window.kind = WindowKind::kScrollText;
    window.format = "text";
    window.title = object.class_name + " " + object.oid.ToString();
    window.text = std::move(text);
    resources.windows.push_back(std::move(window));
    return resources;
  };
}

Result<std::vector<std::string>> SynthesizeDisplayList(
    const odb::Schema& schema, const std::string& class_name) {
  ODE_ASSIGN_OR_RETURN(std::vector<odb::MemberDef> members,
                       schema.AllMembers(class_name));
  std::vector<std::string> out;
  for (const odb::MemberDef& member : members) {
    if (member.access == odb::Access::kPublic) out.push_back(member.name);
  }
  return out;
}

Result<std::vector<std::string>> SynthesizeSelectList(
    const odb::Schema& schema, const std::string& class_name) {
  ODE_ASSIGN_OR_RETURN(std::vector<odb::MemberDef> members,
                       schema.AllMembers(class_name));
  std::vector<std::string> out;
  for (const odb::MemberDef& member : members) {
    if (member.access == odb::Access::kPublic && IsScalar(member.type)) {
      out.push_back(member.name);
    }
  }
  return out;
}

}  // namespace ode::dynlink
