#ifndef ODEVIEW_OWL_WIDGET_H_
#define ODEVIEW_OWL_WIDGET_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "owl/framebuffer.h"
#include "owl/geometry.h"

namespace ode::owl {

/// Base of the widget tree.
///
/// A widget has a name (unique within its window by convention — the
/// headless server addresses widgets by name in tests), a rectangle in
/// parent coordinates, visibility, and children. Rendering walks the
/// tree; click/scroll dispatch routes to the deepest visible child
/// containing the point.
class Widget {
 public:
  explicit Widget(std::string name) : name_(std::move(name)) {}
  virtual ~Widget() = default;

  Widget(const Widget&) = delete;
  Widget& operator=(const Widget&) = delete;

  const std::string& name() const { return name_; }
  /// Widget type for diagnostics ("button", "scrolltext", ...).
  virtual std::string_view TypeName() const { return "widget"; }

  const Rect& rect() const { return rect_; }
  void set_rect(const Rect& rect) { rect_ = rect; }

  bool visible() const { return visible_; }
  void set_visible(bool visible) { visible_ = visible; }

  Widget* parent() const { return parent_; }

  /// Takes ownership of `child` and returns a raw borrow of it.
  Widget* AddChild(std::unique_ptr<Widget> child);

  /// Removes (and destroys) the child with the given name, recursively.
  bool RemoveChild(std::string_view child_name);

  const std::vector<std::unique_ptr<Widget>>& children() const {
    return children_;
  }

  /// Depth-first search by name (this widget included).
  Widget* FindWidget(std::string_view widget_name);
  const Widget* FindWidget(std::string_view widget_name) const;

  /// Position of `this` in window-content coordinates (sums ancestor
  /// origins).
  Point AbsoluteOrigin() const;

  /// Renders this widget and its children. `origin` is the absolute
  /// position of this widget's top-left corner.
  void Render(Framebuffer* fb, Point origin) const;

  /// Routes a click at `local` (this widget's coordinates) to the
  /// deepest interested child; returns whether it was consumed.
  bool DispatchClick(Point local);
  bool DispatchScroll(Point local, int amount);
  /// Key events go to this widget directly (the server tracks focus).
  virtual bool OnKey(std::string_view text);

 protected:
  /// Subclass hooks: self rendering and self event handling.
  virtual void RenderSelf(Framebuffer* fb, Point origin) const;
  virtual bool OnClick(Point local);
  virtual bool OnScroll(Point local, int amount);

 private:
  std::string name_;
  Rect rect_;
  bool visible_ = true;
  Widget* parent_ = nullptr;
  std::vector<std::unique_ptr<Widget>> children_;
};

}  // namespace ode::owl

#endif  // ODEVIEW_OWL_WIDGET_H_
