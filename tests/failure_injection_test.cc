// Failure injection: a pager decorator that starts failing after N
// operations, verifying that I/O errors propagate as Status through
// every storage layer instead of crashing or corrupting state.

#include <gtest/gtest.h>

#include "odb/buffer_pool.h"
#include "odb/catalog.h"
#include "odb/heap_file.h"
#include "odb/pager.h"

namespace ode::odb {
namespace {

/// Wraps a MemPager; after `budget` successful operations every call
/// fails with IOError (a full disk / dead device).
class FlakyPager final : public Pager {
 public:
  explicit FlakyPager(int budget) : budget_(budget) {}

  void set_budget(int budget) { budget_ = budget; }

  Result<PageId> Allocate() override {
    ODE_RETURN_IF_ERROR(Spend());
    return inner_.Allocate();
  }
  Status Read(PageId id, Page* page) override {
    ODE_RETURN_IF_ERROR(Spend());
    return inner_.Read(id, page);
  }
  Status Write(PageId id, const Page& page) override {
    ODE_RETURN_IF_ERROR(Spend());
    return inner_.Write(id, page);
  }
  uint32_t page_count() const override { return inner_.page_count(); }
  Status Sync() override {
    ODE_RETURN_IF_ERROR(Spend());
    return inner_.Sync();
  }

 private:
  Status Spend() {
    if (budget_ <= 0) return Status::IOError("injected device failure");
    --budget_;
    return Status::OK();
  }

  MemPager inner_;
  int budget_;
};

TEST(FailureInjectionTest, FetchSurfacesReadErrors) {
  FlakyPager pager(1);
  BufferPool pool(&pager, 4);
  PageId id = *pager.Allocate();  // spends the budget
  Result<PageHandle> handle = pool.Fetch(id);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kIOError);
}

TEST(FailureInjectionTest, EvictionWritebackFailureSurfaces) {
  FlakyPager pager(1000);
  BufferPool pool(&pager, 1);
  PageId a = *pager.Allocate();
  PageId b = *pager.Allocate();
  {
    PageHandle handle = *pool.Fetch(a);
    handle.page()->bytes()[0] = 'x';
    handle.MarkDirty();
  }
  pager.set_budget(0);  // the write-back during eviction must fail
  Result<PageHandle> handle = pool.Fetch(b);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kIOError);
  // After the device "recovers", the dirty page is still intact in the
  // pool and can be flushed.
  pager.set_budget(1000);
  ASSERT_TRUE(pool.FlushAll().ok());
  Page raw;
  ASSERT_TRUE(pager.Read(a, &raw).ok());
  EXPECT_EQ(raw.bytes()[0], 'x');
}

TEST(FailureInjectionTest, HeapOperationsPropagateErrors) {
  FlakyPager pager(1000);
  BufferPool pool(&pager, 4);
  FreeList free_list(&pool, kNoPage);
  HeapFile heap = *HeapFile::Create(&pool, &free_list);
  ASSERT_TRUE(heap.Insert(1, "payload").ok());
  ASSERT_TRUE(pool.FlushAll().ok());
  pager.set_budget(0);
  // Reads may still hit the pool cache; force a miss by exceeding
  // capacity with inserts, which must fail cleanly.
  Status status = Status::OK();
  for (int i = 2; i < 200 && status.ok(); ++i) {
    status = heap.Insert(static_cast<uint64_t>(i), std::string(800, 'x'));
  }
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  // Recovery: once I/O works again, the heap keeps functioning.
  pager.set_budget(100000);
  EXPECT_TRUE(heap.Insert(9999, "after recovery").ok());
  EXPECT_EQ(*heap.Get(9999), "after recovery");
}

TEST(FailureInjectionTest, CatalogPersistFailureSurfaces) {
  FlakyPager pager(1000);
  BufferPool pool(&pager, 8);
  Catalog catalog = *Catalog::Format(&pool, "flaky");
  ClassDef def;
  def.name = "c";
  ASSERT_TRUE(catalog.mutable_schema()->AddClass(def).ok());
  pager.set_budget(0);
  // Persist needs fresh pages for the catalog blob once the pool's
  // frames are exhausted; with a dead device it must fail, not crash.
  Status status = Status::OK();
  for (int i = 0; i < 64 && status.ok(); ++i) {
    ClassDef more;
    more.name = "filler_" + std::to_string(i);
    // Bloat the schema so the blob spans several fresh pages.
    more.source = std::string(2048, 's');
    ASSERT_TRUE(catalog.mutable_schema()->AddClass(more).ok());
    status = catalog.Persist();
  }
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace ode::odb
