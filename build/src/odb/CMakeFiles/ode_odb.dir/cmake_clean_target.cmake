file(REMOVE_RECURSE
  "libode_odb.a"
)
