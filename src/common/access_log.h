#ifndef ODEVIEW_COMMON_ACCESS_LOG_H_
#define ODEVIEW_COMMON_ACCESS_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/threading.h"

namespace ode::obs {

/// What kind of object access an event records. The numeric values are
/// part of the capture file format (see `AccessTraceWriter`) — append
/// only, never renumber.
enum class AccessOp : uint8_t {
  kGet = 0,     ///< point read (Get / cursor fetch)
  kScan = 1,    ///< batched sequential read (NextRecords / executor scan)
  kCreate = 2,  ///< record inserted
  kUpdate = 3,  ///< record rewritten
  kDelete = 4,  ///< record removed
};

/// Number of distinct `AccessOp` values (per-op heat breakdown arrays).
inline constexpr size_t kAccessOpCount = 5;

/// Wire name of an access op ("get", "scan", ...).
const char* AccessOpName(AccessOp op);

/// One sampled object access: which object, of which class, on which
/// heap page, what happened, and who did it. `class_label` has static
/// storage duration (interned — the same contract as journal details).
struct AccessEvent {
  uint64_t seq = 0;    ///< 1-based recorder sequence number
  uint64_t ts_ns = 0;  ///< Tracing::NowNanos() time base
  AccessOp op = AccessOp::kGet;
  uint64_t cluster = 0;  ///< Oid cluster part (class extent)
  uint64_t local = 0;    ///< Oid local part
  uint64_t page = 0;     ///< heap page holding the record's primary slot
  const char* class_label = nullptr;
  uint64_t session_id = 0;  ///< 0 = not session-bound
  uint64_t trace_id = 0;    ///< causal context at record time (0 = none)
};

/// Per-page heat: object-attributed accesses (heap layer) and raw pool
/// page touches (buffer-pool fetches) tallied separately, so a page
/// that is hot only through index/overflow traffic is distinguishable
/// from one hot with record reads.
struct PageHeat {
  uint64_t page = 0;
  uint64_t object_accesses = 0;
  uint64_t pool_touches = 0;
};

/// Per-class heat with a per-op breakdown.
struct ClassHeat {
  const char* class_label = nullptr;
  uint64_t total = 0;
  uint64_t by_op[kAccessOpCount] = {0, 0, 0, 0, 0};
};

/// One reference-affinity edge: the display cascade (or join row flow)
/// that touched `src` went on to touch `dst`. The clustering advisor
/// (ROADMAP item 4) mines these for co-location candidates.
struct AffinityEdge {
  uint64_t src_cluster = 0;
  uint64_t src_local = 0;
  uint64_t dst_cluster = 0;
  uint64_t dst_local = 0;
  const char* src_class = nullptr;
  const char* dst_class = nullptr;
  uint64_t count = 0;
};

/// Aggregated view of everything the recorder has seen since the last
/// reset: what the `/heatmap` endpoint renders and what the
/// capture→replay round-trip test compares.
struct AccessProfile {
  /// class label -> object accesses (all ops folded together; replay
  /// re-executes mutations as reads, so per-op splits would not
  /// round-trip but totals do).
  std::map<std::string, uint64_t> class_counts;
  std::vector<PageHeat> pages;      ///< hottest first
  std::vector<ClassHeat> classes;   ///< hottest first
  std::vector<AffinityEdge> edges;  ///< heaviest first
};

/// Streaming writer for the access capture file: `[magic "ODEACC01"]`
/// followed by CRC'd length-prefixed records (the WAL's framing idiom
/// from coding.{h,cc}): `fixed32 payload_len | payload | fixed32 crc`.
/// Payload starts with a one-byte record type:
///   1 class-def   varint id, length-prefixed class name
///   2 access      varint op, cluster, local, page, class id,
///                 session, trace, ts_ns
///   3 affinity    varint src cluster/local/class-id,
///                 dst cluster/local/class-id
/// Class names are interned per file, so repeated events cost a couple
/// of varints. A torn tail (truncated or CRC-mismatched final record)
/// is detected and reading stops at the last intact record.
class AccessTraceWriter {
 public:
  AccessTraceWriter() = default;
  ~AccessTraceWriter();
  AccessTraceWriter(const AccessTraceWriter&) = delete;
  AccessTraceWriter& operator=(const AccessTraceWriter&) = delete;

  Status Open(const std::string& path);
  bool is_open() const { return file_ != nullptr; }
  uint64_t records_written() const { return records_written_; }

  void WriteEvent(const AccessEvent& event);
  void WriteAffinity(uint64_t src_cluster, uint64_t src_local,
                     const char* src_class, uint64_t dst_cluster,
                     uint64_t dst_local, const char* dst_class);

  /// Flushes buffered records and closes; returns records written.
  Result<uint64_t> Close();

 private:
  uint32_t InternClass(const char* label);
  void WriteFramed(const std::string& payload);
  void FlushBuffer();

  std::FILE* file_ = nullptr;
  std::string buffer_;
  std::map<const void*, uint32_t> class_ids_;
  uint32_t next_class_id_ = 1;
  uint64_t records_written_ = 0;
};

/// One record read back from a capture file.
struct AccessTraceRecord {
  enum class Kind { kEvent, kAffinity };
  Kind kind = Kind::kEvent;
  AccessEvent event;  ///< kEvent (class_label interned on read)
  /// kAffinity:
  uint64_t src_cluster = 0, src_local = 0;
  uint64_t dst_cluster = 0, dst_local = 0;
  const char* src_class = nullptr;
  const char* dst_class = nullptr;
};

/// Reads a capture file fully into memory. `torn_tail_bytes` reports
/// trailing bytes dropped because the final record was torn (0 = file
/// ended on a record boundary).
struct AccessTrace {
  std::vector<AccessTraceRecord> records;
  uint64_t torn_tail_bytes = 0;
};
Result<AccessTrace> ReadAccessTrace(const std::string& path);

/// Parses capture bytes already in memory (the file reader above
/// delegates here). This is the untrusted-byte boundary: arbitrary
/// input must parse, fail cleanly, or stop at a torn tail — never
/// crash (fuzzed by `fuzz/fuzz_access_trace.cc`).
Result<AccessTrace> ParseAccessTrace(std::string_view bytes);

/// The process-wide sampled access recorder.
///
/// Producers (heap reads, pool fetches, cascade resolution, join row
/// flow) record with a handful of atomics and never block: events go
/// into a Journal-style lock-free MPSC overwrite ring, and heat is
/// aggregated inline into fixed-size open-addressing tables whose
/// slots are claimed by compare-and-swap. When capture is active,
/// recording additionally serializes the event into a buffered trace
/// file under `capture_mu_` (rank `kAccessCapture` — recording *on*
/// is a tracing mode and may pay a short mutex; recording *off* costs
/// one relaxed load per charge site).
///
/// Loss accounting: `dropped()` counts ring slot-claim races plus heat
/// table overflow (a table ran out of slots — the heat map is then a
/// floor, not a census); `overwritten()` counts ring records replaced
/// by newer generations. Both surface as `obs.access.*` counters and
/// in the `/heatmap` JSON.
class AccessLog {
 public:
  static constexpr size_t kDefaultRingCapacity = 16384;
  static constexpr size_t kPageTableCapacity = 4096;
  static constexpr size_t kClassTableCapacity = 256;
  static constexpr size_t kAffinityTableCapacity = 4096;

  explicit AccessLog(size_t ring_capacity = kDefaultRingCapacity);
  ~AccessLog();
  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// The process-wide recorder (leaked; disabled until `Start`).
  static AccessLog& Global();

  /// Enables recording, sampling one in `sample_period` events
  /// (1 = record everything). Journals `access_recorder_start`.
  void Start(uint32_t sample_period = 1);
  /// Disables recording (capture, if active, stays open until
  /// `StopCapture`). Journals `access_recorder_stop`.
  void Stop();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  uint32_t sample_period() const {
    return sample_period_.load(std::memory_order_relaxed);
  }

  /// Opens `path` for capture and enables the recorder if it is off.
  Status StartCapture(const std::string& path);
  /// Flushes + closes the capture file; returns records written.
  /// The recorder itself stays in its current enabled/disabled state.
  Result<uint64_t> StopCapture();
  bool capturing() const {
    return capturing_.load(std::memory_order_acquire);
  }

  // --- Charge sites ----------------------------------------------------
  /// Records one object access. `class_label` must have static storage
  /// duration (interned). Costs one relaxed load when disabled.
  void Record(AccessOp op, uint64_t cluster, uint64_t local,
              const char* class_label, uint64_t page);
  /// Records a raw buffer-pool page touch (page heat only; not an
  /// event, not captured — replay regenerates its own pool traffic).
  void RecordPageTouch(uint64_t page);
  /// Records a reference-affinity edge (cascade / join row flow).
  /// Not sampled: edges are rare and each one is signal.
  void RecordAffinity(uint64_t src_cluster, uint64_t src_local,
                      const char* src_class, uint64_t dst_cluster,
                      uint64_t dst_local, const char* dst_class);

  // --- Accounting ------------------------------------------------------
  /// Events recorded into the ring (sampled-in, not dropped).
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  /// Ring claim races + heat/affinity table overflow.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  /// Ring records overwritten by newer generations.
  uint64_t overwritten() const {
    return overwritten_.load(std::memory_order_relaxed);
  }
  size_t ring_capacity() const { return ring_capacity_; }

  // --- Reads -----------------------------------------------------------
  /// The retained ring tail, oldest first (consistent snapshot; slots
  /// being overwritten mid-read are skipped).
  std::vector<AccessEvent> SnapshotRing() const;

  /// Aggregated heat + affinity. `top_pages` / `top_edges` bound the
  /// vectors (0 = everything), hottest first.
  AccessProfile SnapshotProfile(size_t top_pages = 0,
                                size_t top_edges = 0) const;

  /// The `/heatmap` document: page heat, class heat, top-N affinity
  /// edges, ring/loss accounting, recorder state.
  std::string RenderHeatmapJson(size_t top_n = 32) const;
  /// Human-readable heat map for the shell.
  std::string RenderHeatmapText(size_t top_n = 16) const;

  /// Clears everything (ring, tables, counters) and disables the
  /// recorder. Callers must be quiesced — test-only.
  void ResetForTest();

 private:
  /// Journal-style ring slot; `commit` is 0 = empty, kBusy = being
  /// written, else the committed sequence number.
  struct RingSlot {
    std::atomic<uint64_t> commit{0};
    std::atomic<uint64_t> ts_ns{0};
    std::atomic<uint8_t> op{0};
    std::atomic<uint64_t> cluster{0};
    std::atomic<uint64_t> local{0};
    std::atomic<uint64_t> page{0};
    std::atomic<const char*> class_label{nullptr};
    std::atomic<uint64_t> session_id{0};
    std::atomic<uint64_t> trace_id{0};
  };
  /// Open-addressing heat slot keyed by page+1 (0 = empty).
  struct PageSlot {
    std::atomic<uint64_t> key{0};
    std::atomic<uint64_t> object_accesses{0};
    std::atomic<uint64_t> pool_touches{0};
  };
  /// Heat slot keyed by interned class label (nullptr = empty).
  struct ClassSlot {
    std::atomic<const char*> key{nullptr};
    std::atomic<uint64_t> total{0};
    std::atomic<uint64_t> by_op[kAccessOpCount];
  };
  /// Affinity slot. `state` 0 = empty, 1 = key being written, 2 =
  /// ready; the count is only bumped on ready slots.
  struct AffinitySlot {
    std::atomic<uint32_t> state{0};
    uint64_t src_cluster = 0, src_local = 0;
    uint64_t dst_cluster = 0, dst_local = 0;
    const char* src_class = nullptr;
    const char* dst_class = nullptr;
    std::atomic<uint64_t> count{0};
  };

  static constexpr uint64_t kBusy = ~uint64_t{0};

  bool SampledOut();
  void AppendToRing(const AccessEvent& event);
  void BumpPageHeat(uint64_t page, bool object_access);
  void BumpClassHeat(const char* label, AccessOp op);
  bool ReadRingSlot(uint64_t seq, AccessEvent* out) const;
  void CountDrop(uint64_t n = 1);
  /// First ring overflow after each Start is journaled (rate limit).
  void NoteOverwrite();

  size_t ring_capacity_ = 0;
  uint64_t ring_mask_ = 0;
  std::unique_ptr<RingSlot[]> ring_;
  std::unique_ptr<PageSlot[]> pages_;
  std::unique_ptr<ClassSlot[]> classes_;
  std::unique_ptr<AffinitySlot[]> affinity_;

  std::atomic<bool> enabled_{false};
  std::atomic<uint32_t> sample_period_{1};
  std::atomic<uint64_t> sample_tick_{0};
  std::atomic<uint64_t> next_seq_{0};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> overwritten_{0};
  std::atomic<bool> overflow_journaled_{false};

  /// `capturing_` is the producers' cheap gate; the writer itself is
  /// guarded by `capture_mu_` (rank kAccessCapture, 185 — above every
  /// engine lock a charge site may hold, below the obs render locks).
  std::atomic<bool> capturing_{false};
  mutable Mutex capture_mu_{LockRank::kAccessCapture};
  AccessTraceWriter capture_ ODE_GUARDED_BY(capture_mu_);
};

}  // namespace ode::obs

#endif  // ODEVIEW_COMMON_ACCESS_LOG_H_
