#ifndef ODEVIEW_COMMON_CODING_H_
#define ODEVIEW_COMMON_CODING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ode {

/// Little-endian / varint encoding primitives used by value serialization
/// and the storage engine. Follows the LevelDB/RocksDB coding style but
/// with bounds-checked, Status-returning decoders.

/// Appends fixed-width little-endian integers to `dst`.
void PutFixed16(std::string* dst, uint16_t value);
void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);

/// Appends base-128 varints to `dst`.
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);

/// Appends a varint length prefix followed by the bytes of `value`.
void PutLengthPrefixed(std::string* dst, std::string_view value);

/// Appends an IEEE double as 8 little-endian bytes.
void PutDouble(std::string* dst, double value);

/// CRC-32 (ISO-HDLC polynomial, the zlib variant) of `bytes`, seeded
/// with `seed` so multi-buffer checksums chain: Crc32(b, Crc32(a)) ==
/// Crc32(a+b). Used by the write-ahead log to detect torn record tails.
uint32_t Crc32(std::string_view bytes, uint32_t seed = 0);

/// Decodes fixed-width integers from raw buffers (caller checks bounds).
uint16_t DecodeFixed16(const char* ptr);
uint32_t DecodeFixed32(const char* ptr);
uint64_t DecodeFixed64(const char* ptr);

/// Sequential, bounds-checked decoder over an input buffer.
///
/// All Get* methods consume bytes from the front and fail with
/// `Corruption` if the buffer is exhausted or malformed.
class Decoder {
 public:
  explicit Decoder(std::string_view input) : input_(input) {}

  Status GetFixed16(uint16_t* value);
  Status GetFixed32(uint32_t* value);
  Status GetFixed64(uint64_t* value);
  Status GetVarint32(uint32_t* value);
  Status GetVarint64(uint64_t* value);
  Status GetDouble(double* value);
  /// Reads a varint length prefix then that many bytes into `value`
  /// (a view into the original buffer).
  Status GetLengthPrefixed(std::string_view* value);
  /// Reads exactly `n` raw bytes.
  Status GetRaw(size_t n, std::string_view* value);

  /// Bytes not yet consumed.
  std::string_view remaining() const { return input_; }
  bool empty() const { return input_.empty(); }

 private:
  std::string_view input_;
};

}  // namespace ode

#endif  // ODEVIEW_COMMON_CODING_H_
