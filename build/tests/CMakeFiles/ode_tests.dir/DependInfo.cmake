
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/ode_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/ode_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/dag_test.cc" "tests/CMakeFiles/ode_tests.dir/dag_test.cc.o" "gcc" "tests/CMakeFiles/ode_tests.dir/dag_test.cc.o.d"
  "/root/repo/tests/database_test.cc" "tests/CMakeFiles/ode_tests.dir/database_test.cc.o" "gcc" "tests/CMakeFiles/ode_tests.dir/database_test.cc.o.d"
  "/root/repo/tests/ddl_parser_test.cc" "tests/CMakeFiles/ode_tests.dir/ddl_parser_test.cc.o" "gcc" "tests/CMakeFiles/ode_tests.dir/ddl_parser_test.cc.o.d"
  "/root/repo/tests/dynlink_test.cc" "tests/CMakeFiles/ode_tests.dir/dynlink_test.cc.o" "gcc" "tests/CMakeFiles/ode_tests.dir/dynlink_test.cc.o.d"
  "/root/repo/tests/edge_cases_test.cc" "tests/CMakeFiles/ode_tests.dir/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/ode_tests.dir/edge_cases_test.cc.o.d"
  "/root/repo/tests/evolution_test.cc" "tests/CMakeFiles/ode_tests.dir/evolution_test.cc.o" "gcc" "tests/CMakeFiles/ode_tests.dir/evolution_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/ode_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/ode_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/failure_injection_test.cc" "tests/CMakeFiles/ode_tests.dir/failure_injection_test.cc.o" "gcc" "tests/CMakeFiles/ode_tests.dir/failure_injection_test.cc.o.d"
  "/root/repo/tests/golden_render_test.cc" "tests/CMakeFiles/ode_tests.dir/golden_render_test.cc.o" "gcc" "tests/CMakeFiles/ode_tests.dir/golden_render_test.cc.o.d"
  "/root/repo/tests/odeview_test.cc" "tests/CMakeFiles/ode_tests.dir/odeview_test.cc.o" "gcc" "tests/CMakeFiles/ode_tests.dir/odeview_test.cc.o.d"
  "/root/repo/tests/odeview_widgets_test.cc" "tests/CMakeFiles/ode_tests.dir/odeview_widgets_test.cc.o" "gcc" "tests/CMakeFiles/ode_tests.dir/odeview_widgets_test.cc.o.d"
  "/root/repo/tests/owl_test.cc" "tests/CMakeFiles/ode_tests.dir/owl_test.cc.o" "gcc" "tests/CMakeFiles/ode_tests.dir/owl_test.cc.o.d"
  "/root/repo/tests/predicate_test.cc" "tests/CMakeFiles/ode_tests.dir/predicate_test.cc.o" "gcc" "tests/CMakeFiles/ode_tests.dir/predicate_test.cc.o.d"
  "/root/repo/tests/schema_test.cc" "tests/CMakeFiles/ode_tests.dir/schema_test.cc.o" "gcc" "tests/CMakeFiles/ode_tests.dir/schema_test.cc.o.d"
  "/root/repo/tests/storage_fuzz_test.cc" "tests/CMakeFiles/ode_tests.dir/storage_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/ode_tests.dir/storage_fuzz_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/ode_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/ode_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/value_test.cc" "tests/CMakeFiles/ode_tests.dir/value_test.cc.o" "gcc" "tests/CMakeFiles/ode_tests.dir/value_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/odeview/CMakeFiles/ode_odeview.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/ode_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/dynlink/CMakeFiles/ode_dynlink.dir/DependInfo.cmake"
  "/root/repo/build/src/odb/CMakeFiles/ode_odb.dir/DependInfo.cmake"
  "/root/repo/build/src/owl/CMakeFiles/ode_owl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ode_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
