#include <gtest/gtest.h>

#include "odb/value.h"
#include "odb/value_codec.h"

namespace ode::odb {
namespace {

Value SampleEmployee() {
  return Value::Struct({
      {"name", Value::String("rakesh")},
      {"age", Value::Int(35)},
      {"salary", Value::Real(90000.5)},
      {"active", Value::Bool(true)},
      {"dept", Value::Ref(Oid{2, 1}, "department")},
      {"scores", Value::Array({Value::Int(1), Value::Int(2)})},
      {"peers", Value::Set({Value::Ref(Oid{1, 2}, "employee")})},
      {"photo", Value::Blob(std::string("\x00\x01\xff", 3))},
      {"note", Value::Null()},
  });
}

// --- Basic semantics ---------------------------------------------------

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.kind(), ValueKind::kNull);
  EXPECT_EQ(v.size(), 0u);
}

TEST(ValueTest, ScalarAccessors) {
  EXPECT_EQ(Value::Int(-5).AsInt(), -5);
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsReal(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_EQ(Value::Blob("raw").AsString(), "raw");
}

TEST(ValueTest, RefCarriesOidAndClass) {
  Value ref = Value::Ref(Oid{3, 17}, "manager");
  EXPECT_EQ(ref.AsRef(), (Oid{3, 17}));
  EXPECT_EQ(ref.RefClass(), "manager");
}

TEST(ValueTest, NullOid) {
  EXPECT_TRUE(Oid::Null().IsNull());
  EXPECT_EQ(Oid::Null().ToString(), "null");
  EXPECT_EQ((Oid{2, 9}).ToString(), "c2:o9");
  EXPECT_FALSE((Oid{0, 1}).IsNull());
}

TEST(ValueTest, OidOrdering) {
  EXPECT_LT((Oid{1, 5}), (Oid{2, 1}));
  EXPECT_LT((Oid{1, 1}), (Oid{1, 2}));
  EXPECT_EQ((Oid{1, 1}), (Oid{1, 1}));
}

TEST(ValueTest, StructFieldLookup) {
  Value v = SampleEmployee();
  ASSERT_NE(v.FindField("age"), nullptr);
  EXPECT_EQ(v.FindField("age")->AsInt(), 35);
  EXPECT_EQ(v.FindField("missing"), nullptr);
  EXPECT_EQ(v.size(), 9u);
}

TEST(ValueTest, MutableFieldUpdates) {
  Value v = SampleEmployee();
  *v.FindMutableField("age") = Value::Int(36);
  EXPECT_EQ(v.FindField("age")->AsInt(), 36);
}

TEST(ValueTest, FindPathTraversesNestedStructs) {
  Value nested = Value::Struct(
      {{"dept",
        Value::Struct({{"name", Value::String("research")},
                       {"head",
                        Value::Struct({{"name", Value::String("amy")}})}})}});
  ASSERT_NE(nested.FindPath("dept.name"), nullptr);
  EXPECT_EQ(nested.FindPath("dept.name")->AsString(), "research");
  EXPECT_EQ(nested.FindPath("dept.head.name")->AsString(), "amy");
  EXPECT_EQ(nested.FindPath("dept.missing"), nullptr);
  EXPECT_EQ(nested.FindPath("dept.name.deeper"), nullptr);
}

TEST(ValueTest, ElementsOfArraysAndSets) {
  Value arr = Value::Array({Value::Int(1), Value::Int(2), Value::Int(3)});
  EXPECT_EQ(arr.elements().size(), 3u);
  Value set = Value::Set({Value::String("a")});
  EXPECT_EQ(set.size(), 1u);
  // Scalars expose empty element lists rather than UB.
  EXPECT_TRUE(Value::Int(1).elements().empty());
  EXPECT_TRUE(Value::Int(1).fields().empty());
}

TEST(ValueTest, ToNumberCoercions) {
  EXPECT_DOUBLE_EQ(*Value::Int(4).ToNumber(), 4.0);
  EXPECT_DOUBLE_EQ(*Value::Real(2.5).ToNumber(), 2.5);
  EXPECT_DOUBLE_EQ(*Value::Bool(true).ToNumber(), 1.0);
  EXPECT_TRUE(Value::String("x").ToNumber().status().IsInvalidArgument());
  EXPECT_TRUE(Value::Null().ToNumber().status().IsInvalidArgument());
}

TEST(ValueTest, DeepEquality) {
  EXPECT_EQ(SampleEmployee(), SampleEmployee());
  Value changed = SampleEmployee();
  *changed.FindMutableField("age") = Value::Int(99);
  EXPECT_NE(SampleEmployee(), changed);
  EXPECT_NE(Value::Int(1), Value::Real(1.0));  // kinds differ
  EXPECT_NE(Value::Array({}), Value::Set({}));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  EXPECT_EQ(Value::String("a\"b").ToString(), "\"a\\\"b\"");
  EXPECT_EQ(Value::Ref(Oid{1, 2}, "employee").ToString(),
            "@employee(c1:o2)");
  EXPECT_EQ(Value::Struct({{"x", Value::Int(1)}}).ToString(), "{x: 1}");
  EXPECT_EQ(Value::Array({Value::Int(1), Value::Int(2)}).ToString(),
            "[1, 2]");
}

TEST(ValueTest, IndentedStringNestsStructures) {
  Value v = Value::Struct(
      {{"name", Value::String("amy")},
       {"dept", Value::Struct({{"label", Value::String("db")}})}});
  std::string text = v.ToIndentedString();
  EXPECT_NE(text.find("name: \"amy\""), std::string::npos);
  EXPECT_NE(text.find("  label: \"db\""), std::string::npos);
}

TEST(ValueTest, KindNames) {
  EXPECT_EQ(ValueKindName(ValueKind::kStruct), "struct");
  EXPECT_EQ(ValueKindName(ValueKind::kRef), "ref");
  EXPECT_EQ(ValueKindName(ValueKind::kNull), "null");
}

// --- Codec round-trips --------------------------------------------------

TEST(ValueCodecTest, ScalarRoundTrips) {
  for (const Value& v :
       {Value::Null(), Value::Bool(false), Value::Bool(true),
        Value::Int(0), Value::Int(-1), Value::Int(INT64_MAX),
        Value::Int(INT64_MIN), Value::Real(3.25), Value::String(""),
        Value::String("hello"), Value::Blob(std::string(300, '\xfe')),
        Value::Ref(Oid::Null(), "employee"),
        Value::Ref(Oid{7, 123456789}, "department")}) {
    Result<Value> decoded = DecodeValue(EncodeValueToString(v));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, v);
  }
}

TEST(ValueCodecTest, CompositeRoundTrip) {
  Value v = SampleEmployee();
  Result<Value> decoded = DecodeValue(EncodeValueToString(v));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, v);
}

TEST(ValueCodecTest, DeeplyNestedRoundTrip) {
  Value v = Value::Int(42);
  for (int i = 0; i < 30; ++i) {
    v = Value::Struct({{"inner", std::move(v)}});
  }
  Result<Value> decoded = DecodeValue(EncodeValueToString(v));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, v);
}

TEST(ValueCodecTest, ExcessiveNestingRejected) {
  Value v = Value::Int(1);
  for (int i = 0; i < 80; ++i) {
    v = Value::Array({std::move(v)});
  }
  Result<Value> decoded = DecodeValue(EncodeValueToString(v));
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(ValueCodecTest, TrailingBytesRejected) {
  std::string bytes = EncodeValueToString(Value::Int(5));
  bytes += "junk";
  EXPECT_TRUE(DecodeValue(bytes).status().IsCorruption());
}

TEST(ValueCodecTest, TruncationRejectedEverywhere) {
  std::string bytes = EncodeValueToString(SampleEmployee());
  // Every proper prefix must fail cleanly, never crash.
  for (size_t len = 0; len < bytes.size(); ++len) {
    Result<Value> decoded = DecodeValue(bytes.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix length " << len;
  }
}

TEST(ValueCodecTest, UnknownTagRejected) {
  std::string bytes;
  bytes.push_back(static_cast<char>(0x7f));
  EXPECT_TRUE(DecodeValue(bytes).status().IsCorruption());
}

/// Deterministic pseudo-random value generator for property tests.
Value RandomValue(uint64_t* state, int depth) {
  auto next = [&]() {
    *state = *state * 6364136223846793005ull + 1442695040888963407ull;
    return *state >> 33;
  };
  int kind = static_cast<int>(next() % (depth > 3 ? 6 : 9));
  switch (kind) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Bool(next() % 2 == 0);
    case 2:
      return Value::Int(static_cast<int64_t>(next()) -
                        static_cast<int64_t>(next()));
    case 3:
      return Value::Real(static_cast<double>(next()) / 7.0);
    case 4:
      return Value::String(std::string(next() % 20, 'a' + next() % 26));
    case 5:
      return Value::Ref(Oid{static_cast<ClusterId>(next() % 10),
                            next() % 1000},
                        "cls" + std::to_string(next() % 5));
    case 6: {
      std::vector<Value::Field> fields;
      size_t n = next() % 4;
      for (size_t i = 0; i < n; ++i) {
        fields.push_back({"f" + std::to_string(i),
                          RandomValue(state, depth + 1)});
      }
      return Value::Struct(std::move(fields));
    }
    case 7: {
      std::vector<Value> elements;
      size_t n = next() % 4;
      for (size_t i = 0; i < n; ++i) {
        elements.push_back(RandomValue(state, depth + 1));
      }
      return Value::Array(std::move(elements));
    }
    default: {
      std::vector<Value> elements;
      size_t n = next() % 3;
      for (size_t i = 0; i < n; ++i) {
        elements.push_back(RandomValue(state, depth + 1));
      }
      return Value::Set(std::move(elements));
    }
  }
}

class ValueCodecProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ValueCodecProperty, RandomValueRoundTrips) {
  uint64_t state = GetParam();
  for (int i = 0; i < 50; ++i) {
    Value v = RandomValue(&state, 0);
    Result<Value> decoded = DecodeValue(EncodeValueToString(v));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueCodecProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace ode::odb
