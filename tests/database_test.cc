#include <cstdio>
#include <gtest/gtest.h>

#include "odb/database.h"
#include "odb/labdb.h"
#include "odb/predicate.h"
#include "odb/typecheck.h"

namespace ode::odb {
namespace {

constexpr char kTinySchema[] = R"(
persistent class dept {
public:
  string name;
};
persistent class person {
public:
  string name;
  int age;
  dept* dept_ref;
  set<person*> friends;
  constraint age >= 0;
  trigger retire: on_update when age >= 65 do pension;
};
persistent versioned class note {
public:
  string text;
};
transient class scratch {
public:
  int x;
};
)";

std::unique_ptr<Database> TinyDb() {
  auto db = std::move(*Database::CreateInMemory("tiny"));
  EXPECT_TRUE(db->DefineSchema(kTinySchema).ok());
  return db;
}

Value Person(std::string name, int64_t age, Oid dept = Oid::Null()) {
  return Value::Struct({
      {"name", Value::String(std::move(name))},
      {"age", Value::Int(age)},
      {"dept_ref", Value::Ref(dept, "dept")},
      {"friends", Value::Set({})},
  });
}

// --- Schema operations -----------------------------------------------------

TEST(DatabaseTest, DefineSchemaCreatesClusters) {
  auto db = TinyDb();
  EXPECT_EQ(db->schema().size(), 4u);
  EXPECT_TRUE(db->ClusterOf("person").ok());
  EXPECT_TRUE(db->ClusterOf("dept").ok());
  // Transient classes get no cluster.
  EXPECT_TRUE(db->ClusterOf("scratch").status().IsNotFound());
  EXPECT_EQ(*db->ClusterCount("person"), 0u);
}

TEST(DatabaseTest, DefineSchemaRejectsInvalid) {
  auto db = std::move(*Database::CreateInMemory("bad"));
  EXPECT_FALSE(db->DefineSchema("class a : public ghost {};").ok());
}

TEST(DatabaseTest, DropClassRequiresEmptyCluster) {
  auto db = TinyDb();
  Oid oid = *db->CreateObject("dept",
                              Value::Struct({{"name", Value::String("x")}}));
  EXPECT_EQ(db->DropClass("dept").code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(db->DeleteObject(oid).ok());
  // Still referenced by person.dept_ref.
  EXPECT_EQ(db->DropClass("dept").code(), StatusCode::kFailedPrecondition);
}

// --- Object lifecycle ---------------------------------------------------------

TEST(DatabaseTest, CreateGetRoundTrip) {
  auto db = TinyDb();
  Oid oid = *db->CreateObject("person", Person("amy", 30));
  ObjectBuffer buffer = *db->GetObject(oid);
  EXPECT_EQ(buffer.class_name, "person");
  EXPECT_EQ(buffer.version, 1u);
  EXPECT_EQ(buffer.value.FindField("name")->AsString(), "amy");
  EXPECT_EQ(buffer.oid, oid);
}

TEST(DatabaseTest, CreateRejectsUnknownClass) {
  auto db = TinyDb();
  EXPECT_TRUE(db->CreateObject("ghost", Value::Struct({}))
                  .status()
                  .IsNotFound());
}

TEST(DatabaseTest, CreateRejectsTransientClass) {
  auto db = TinyDb();
  EXPECT_TRUE(db->CreateObject("scratch",
                               Value::Struct({{"x", Value::Int(1)}}))
                  .status()
                  .IsInvalidArgument());
}

TEST(DatabaseTest, TypeCheckRejectsBadValues) {
  auto db = TinyDb();
  // Missing member.
  EXPECT_FALSE(db->CreateObject("person",
                                Value::Struct({{"name", Value::String("x")}}))
                   .ok());
  // Wrong type.
  Value bad = Person("x", 1);
  *bad.FindMutableField("age") = Value::String("forty");
  EXPECT_FALSE(db->CreateObject("person", bad).ok());
  // Undeclared member.
  Value extra = Person("x", 1);
  extra.mutable_fields().push_back({"ghost", Value::Int(1)});
  EXPECT_FALSE(db->CreateObject("person", extra).ok());
}

TEST(DatabaseTest, RefTypeCompatibilityChecked) {
  auto db = TinyDb();
  Oid dept = *db->CreateObject(
      "dept", Value::Struct({{"name", Value::String("research")}}));
  EXPECT_TRUE(db->CreateObject("person", Person("ok", 1, dept)).ok());
  // A ref claiming the wrong class is rejected.
  Value bad = Person("bad", 1);
  *bad.FindMutableField("dept_ref") = Value::Ref(dept, "person");
  EXPECT_FALSE(db->CreateObject("person", bad).ok());
}

TEST(DatabaseTest, UpdateBumpsVersion) {
  auto db = TinyDb();
  Oid oid = *db->CreateObject("person", Person("amy", 30));
  ASSERT_TRUE(db->UpdateObject(oid, Person("amy", 31)).ok());
  ObjectBuffer buffer = *db->GetObject(oid);
  EXPECT_EQ(buffer.version, 2u);
  EXPECT_EQ(buffer.value.FindField("age")->AsInt(), 31);
}

TEST(DatabaseTest, DeleteRemovesObject) {
  auto db = TinyDb();
  Oid oid = *db->CreateObject("person", Person("amy", 30));
  ASSERT_TRUE(db->DeleteObject(oid).ok());
  EXPECT_TRUE(db->GetObject(oid).status().IsNotFound());
  EXPECT_TRUE(db->DeleteObject(oid).IsNotFound());
  EXPECT_EQ(*db->ClusterCount("person"), 0u);
}

TEST(DatabaseTest, OidsNeverReused) {
  auto db = TinyDb();
  Oid first = *db->CreateObject("person", Person("a", 1));
  ASSERT_TRUE(db->DeleteObject(first).ok());
  Oid second = *db->CreateObject("person", Person("b", 2));
  EXPECT_NE(first, second);
  EXPECT_GT(second.local, first.local);
}

// --- Constraints ---------------------------------------------------------------

TEST(DatabaseTest, ConstraintRejectsBadCreate) {
  auto db = TinyDb();
  Result<Oid> result = db->CreateObject("person", Person("baby", -1));
  EXPECT_TRUE(result.status().IsConstraintViolation());
  EXPECT_EQ(*db->ClusterCount("person"), 0u);
}

TEST(DatabaseTest, ConstraintRejectsBadUpdate) {
  auto db = TinyDb();
  Oid oid = *db->CreateObject("person", Person("amy", 30));
  EXPECT_TRUE(db->UpdateObject(oid, Person("amy", -5))
                  .IsConstraintViolation());
  // Object unchanged.
  EXPECT_EQ(db->GetObject(oid)->value.FindField("age")->AsInt(), 30);
}

TEST(DatabaseTest, InheritedConstraintsApply) {
  auto db = std::move(*Database::CreateInMemory("t"));
  ASSERT_TRUE(db->DefineSchema(R"(
class base { public: int n; constraint n >= 10; };
class derived : public base { public: int m; };
)")
                  .ok());
  Value bad = Value::Struct({{"n", Value::Int(5)}, {"m", Value::Int(1)}});
  EXPECT_TRUE(db->CreateObject("derived", bad)
                  .status()
                  .IsConstraintViolation());
  Value good = Value::Struct({{"n", Value::Int(11)}, {"m", Value::Int(1)}});
  EXPECT_TRUE(db->CreateObject("derived", good).ok());
}

// --- Triggers ---------------------------------------------------------------------

TEST(DatabaseTest, TriggerFiresOnCondition) {
  auto db = TinyDb();
  Oid oid = *db->CreateObject("person", Person("old", 64));
  EXPECT_TRUE(db->trigger_log().empty());
  ASSERT_TRUE(db->UpdateObject(oid, Person("old", 65)).ok());
  ASSERT_EQ(db->trigger_log().size(), 1u);
  const TriggerFiring& firing = db->trigger_log()[0];
  EXPECT_EQ(firing.trigger_name, "retire");
  EXPECT_EQ(firing.action, "pension");
  EXPECT_EQ(firing.event, TriggerEvent::kUpdate);
  EXPECT_EQ(firing.oid, oid);
  db->ClearTriggerLog();
  EXPECT_TRUE(db->trigger_log().empty());
}

TEST(DatabaseTest, TriggerConditionFalseDoesNotFire) {
  auto db = TinyDb();
  Oid oid = *db->CreateObject("person", Person("young", 20));
  ASSERT_TRUE(db->UpdateObject(oid, Person("young", 21)).ok());
  EXPECT_TRUE(db->trigger_log().empty());
}

TEST(DatabaseTest, CreateAndDeleteTriggers) {
  auto db = std::move(*Database::CreateInMemory("t"));
  ASSERT_TRUE(db->DefineSchema(R"(
class audited {
public:
  int n;
  trigger born: on_create do log_create;
  trigger gone: on_delete do log_delete;
};
)")
                  .ok());
  Oid oid = *db->CreateObject("audited",
                              Value::Struct({{"n", Value::Int(1)}}));
  ASSERT_EQ(db->trigger_log().size(), 1u);
  EXPECT_EQ(db->trigger_log()[0].action, "log_create");
  ASSERT_TRUE(db->DeleteObject(oid).ok());
  ASSERT_EQ(db->trigger_log().size(), 2u);
  EXPECT_EQ(db->trigger_log()[1].action, "log_delete");
}

// --- Versions -----------------------------------------------------------------------

TEST(DatabaseTest, VersionedClassRetainsHistory) {
  auto db = TinyDb();
  Oid oid = *db->CreateObject(
      "note", Value::Struct({{"text", Value::String("v1")}}));
  ASSERT_TRUE(db->UpdateObject(
                    oid, Value::Struct({{"text", Value::String("v2")}}))
                  .ok());
  ASSERT_TRUE(db->UpdateObject(
                    oid, Value::Struct({{"text", Value::String("v3")}}))
                  .ok());
  EXPECT_EQ(*db->ListVersions(oid), (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_EQ(db->GetObjectVersion(oid, 1)
                ->value.FindField("text")
                ->AsString(),
            "v1");
  EXPECT_EQ(db->GetObjectVersion(oid, 3)
                ->value.FindField("text")
                ->AsString(),
            "v3");
  EXPECT_TRUE(db->GetObjectVersion(oid, 9).status().IsNotFound());
}

TEST(DatabaseTest, UnversionedClassKeepsOnlyCurrent) {
  auto db = TinyDb();
  Oid oid = *db->CreateObject("person", Person("amy", 30));
  ASSERT_TRUE(db->UpdateObject(oid, Person("amy", 31)).ok());
  EXPECT_EQ(*db->ListVersions(oid), (std::vector<uint32_t>{2}));
  EXPECT_TRUE(db->GetObjectVersion(oid, 1).status().IsNotFound());
}

TEST(DatabaseTest, VersionHistoryLimitEnforced) {
  DatabaseOptions options;
  options.version_history_limit = 3;
  auto db = std::move(*Database::CreateInMemory("t", options));
  ASSERT_TRUE(db->DefineSchema("versioned class v { public: int n; };")
                  .ok());
  Oid oid = *db->CreateObject("v", Value::Struct({{"n", Value::Int(0)}}));
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(
        db->UpdateObject(oid, Value::Struct({{"n", Value::Int(i)}})).ok());
  }
  std::vector<uint32_t> versions = *db->ListVersions(oid);
  EXPECT_EQ(versions.size(), 4u);  // 3 retained + current
  EXPECT_EQ(versions.back(), 11u);
  EXPECT_EQ(versions.front(), 8u);  // oldest dropped
}

// --- Sequencing and selection ----------------------------------------------------------

TEST(DatabaseTest, SequencingWalksCreationOrder) {
  auto db = TinyDb();
  std::vector<Oid> oids;
  for (int i = 0; i < 5; ++i) {
    oids.push_back(
        *db->CreateObject("person", Person("p" + std::to_string(i), 20 + i)));
  }
  EXPECT_EQ(*db->FirstObject("person"), oids.front());
  EXPECT_EQ(*db->LastObject("person"), oids.back());
  EXPECT_EQ(*db->NextObject(oids[1]), oids[2]);
  EXPECT_EQ(*db->PrevObject(oids[1]), oids[0]);
  EXPECT_TRUE(db->NextObject(oids.back()).status().IsOutOfRange());
  EXPECT_EQ(db->ScanCluster("person")->size(), 5u);
}

TEST(DatabaseTest, CursorSequencesAndResets) {
  auto db = TinyDb();
  for (int i = 0; i < 3; ++i) {
    (void)*db->CreateObject("person", Person("p" + std::to_string(i), i + 20));
  }
  ObjectCursor cursor(db.get(), "person");
  EXPECT_FALSE(cursor.has_current());
  EXPECT_EQ(cursor.Next()->value.FindField("name")->AsString(), "p0");
  EXPECT_EQ(cursor.Next()->value.FindField("name")->AsString(), "p1");
  EXPECT_EQ(cursor.Prev()->value.FindField("name")->AsString(), "p0");
  EXPECT_TRUE(cursor.Prev().status().IsOutOfRange());
  cursor.Reset();
  EXPECT_EQ(cursor.Next()->value.FindField("name")->AsString(), "p0");
}

TEST(DatabaseTest, FilteredCursorSkipsNonMatching) {
  auto db = TinyDb();
  for (int i = 0; i < 10; ++i) {
    (void)*db->CreateObject("person", Person("p" + std::to_string(i), i));
  }
  Predicate even = *ParsePredicate("age >= 6");
  ObjectCursor cursor(db.get(), "person", even);
  EXPECT_EQ(cursor.Next()->value.FindField("age")->AsInt(), 6);
  EXPECT_EQ(cursor.Next()->value.FindField("age")->AsInt(), 7);
  EXPECT_EQ(cursor.Prev()->value.FindField("age")->AsInt(), 6);
  EXPECT_TRUE(cursor.Prev().status().IsOutOfRange());
}

TEST(DatabaseTest, SelectFiltersCluster) {
  auto db = TinyDb();
  for (int i = 0; i < 10; ++i) {
    (void)*db->CreateObject("person", Person("p" + std::to_string(i), i));
  }
  Predicate p = *ParsePredicate("age >= 5 && age < 8");
  std::vector<Oid> selected = *db->Select("person", p);
  EXPECT_EQ(selected.size(), 3u);
  for (Oid oid : selected) {
    int64_t age = db->GetObject(oid)->value.FindField("age")->AsInt();
    EXPECT_GE(age, 5);
    EXPECT_LT(age, 8);
  }
}

// --- Persistence -----------------------------------------------------------------------

TEST(DatabaseTest, DiskDatabaseSurvivesReopen) {
  std::string path = testing::TempDir() + "/odeview_dbtest_reopen.db";
  std::remove(path.c_str());
  Oid amy;
  {
    auto db = std::move(*Database::CreateOnDisk(path, "disk"));
    ASSERT_TRUE(db->DefineSchema(kTinySchema).ok());
    amy = *db->CreateObject("person", Person("amy", 30));
    (void)*db->CreateObject("person", Person("bob", 40));
    ASSERT_TRUE(db->Sync().ok());
  }
  {
    auto reopened = Database::OpenOnDisk(path);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    auto& db = *reopened;
    EXPECT_EQ(db->name(), "disk");
    EXPECT_EQ(db->schema().size(), 4u);
    EXPECT_EQ(*db->ClusterCount("person"), 2u);
    ObjectBuffer buffer = *db->GetObject(amy);
    EXPECT_EQ(buffer.value.FindField("name")->AsString(), "amy");
    // Ids continue monotonically after reopen.
    Oid carol = *db->CreateObject("person", Person("carol", 50));
    EXPECT_GT(carol.local, amy.local);
  }
  std::remove(path.c_str());
}

TEST(DatabaseTest, LargeObjectsSpanPages) {
  // A person with thousands of friends encodes far beyond one 4 KiB
  // page; the heap spills it to an overflow chain transparently.
  auto db = TinyDb();
  std::vector<Oid> friends;
  for (int i = 0; i < 50; ++i) {
    friends.push_back(
        *db->CreateObject("person", Person("f" + std::to_string(i), 20)));
  }
  Value popular = Person("hub", 30);
  std::vector<Value>& set = popular.FindMutableField("friends")
                                ->mutable_elements();
  for (int round = 0; round < 40; ++round) {
    for (Oid f : friends) set.push_back(Value::Ref(f, "person"));
  }
  Oid hub = *db->CreateObject("person", popular);
  ObjectBuffer buffer = *db->GetObject(hub);
  EXPECT_EQ(buffer.value.FindField("friends")->elements().size(), 2000u);
  // Updates and deletes of the big object work too.
  buffer.value.FindMutableField("friends")->mutable_elements().clear();
  ASSERT_TRUE(db->UpdateObject(hub, buffer.value).ok());
  EXPECT_EQ(db->GetObject(hub)
                ->value.FindField("friends")
                ->elements()
                .size(),
            0u);
  ASSERT_TRUE(db->DeleteObject(hub).ok());
}

TEST(DatabaseTest, SmallBufferPoolStillCorrect) {
  DatabaseOptions options;
  options.buffer_pool_pages = 4;  // heavy eviction traffic
  auto db = std::move(*Database::CreateInMemory("small", options));
  ASSERT_TRUE(db->DefineSchema(kTinySchema).ok());
  std::vector<Oid> oids;
  for (int i = 0; i < 200; ++i) {
    oids.push_back(
        *db->CreateObject("person", Person("p" + std::to_string(i), i % 90)));
  }
  EXPECT_EQ(*db->ClusterCount("person"), 200u);
  for (int i = 0; i < 200; i += 17) {
    EXPECT_EQ(db->GetObject(oids[static_cast<size_t>(i)])
                  ->value.FindField("name")
                  ->AsString(),
              "p" + std::to_string(i));
  }
  EXPECT_GT(db->buffer_pool()->stats().evictions, 0u);
}

// --- Typecheck helpers -------------------------------------------------------------------

TEST(TypeCheckTest, DefaultInstanceValidates) {
  auto db = TinyDb();
  Result<Value> instance = DefaultInstance(db->schema(), "person");
  ASSERT_TRUE(instance.ok());
  EXPECT_TRUE(TypeCheckObject(db->schema(), "person", *instance).ok());
  EXPECT_EQ(instance->FindField("age")->AsInt(), 0);
  EXPECT_TRUE(instance->FindField("dept_ref")->AsRef().IsNull());
}

TEST(TypeCheckTest, NullAcceptedForAnyMember) {
  auto db = TinyDb();
  Value v = Person("x", 1);
  *v.FindMutableField("friends") = Value::Null();
  EXPECT_TRUE(TypeCheckObject(db->schema(), "person", v).ok());
}

TEST(TypeCheckTest, SubclassRefAccepted) {
  auto db = std::move(*Database::CreateInMemory("t"));
  ASSERT_TRUE(db->DefineSchema(R"(
class animal { public: string name; };
class dog : public animal { public: bool good; };
class kennel { public: animal* resident; };
)")
                  .ok());
  Oid dog = *db->CreateObject(
      "dog", Value::Struct({{"name", Value::String("rex")},
                            {"good", Value::Bool(true)}}));
  Value kennel = Value::Struct({{"resident", Value::Ref(dog, "dog")}});
  EXPECT_TRUE(db->CreateObject("kennel", kennel).ok());
  // The reverse direction is rejected.
  auto db2 = std::move(*Database::CreateInMemory("t2"));
  ASSERT_TRUE(db2->DefineSchema(R"(
class animal { public: string name; };
class dog : public animal { public: bool good; };
class doghouse { public: dog* resident; };
)")
                  .ok());
  Oid animal = *db2->CreateObject(
      "animal", Value::Struct({{"name", Value::String("generic")}}));
  Value house = Value::Struct({{"resident", Value::Ref(animal, "animal")}});
  EXPECT_FALSE(db2->CreateObject("doghouse", house).ok());
}

TEST(TypeCheckTest, ArraySizeEnforced) {
  auto db = std::move(*Database::CreateInMemory("t"));
  ASSERT_TRUE(db->DefineSchema("class c { public: int xs[3]; };").ok());
  EXPECT_TRUE(db->CreateObject(
                    "c", Value::Struct({{"xs",
                                         Value::Array({Value::Int(1),
                                                       Value::Int(2),
                                                       Value::Int(3)})}}))
                  .ok());
  EXPECT_FALSE(db->CreateObject(
                     "c", Value::Struct({{"xs", Value::Array({Value::Int(
                                                    1)})}}))
                   .ok());
}

// --- Lab database -----------------------------------------------------------------------------

TEST(LabDbTest, ReproducesPaperCardinalities) {
  auto db = std::move(*Database::CreateInMemory("lab"));
  ASSERT_TRUE(BuildLabDatabase(db.get()).ok());
  // Fig. 3: employee has no superclass, one subclass, 55 objects.
  EXPECT_TRUE(db->schema().DirectSuperclasses("employee")->empty());
  EXPECT_EQ(*db->schema().DirectSubclasses("employee"),
            (std::vector<std::string>{"manager"}));
  EXPECT_EQ(*db->ClusterCount("employee"), 55u);
  // Fig. 5: manager derives from employee AND department, 7 objects.
  EXPECT_EQ(*db->schema().DirectSuperclasses("manager"),
            (std::vector<std::string>{"employee", "department"}));
  EXPECT_TRUE(db->schema().DirectSubclasses("manager")->empty());
  EXPECT_EQ(*db->ClusterCount("manager"), 7u);
}

TEST(LabDbTest, FirstEmployeeIsRakeshInResearch) {
  auto db = std::move(*Database::CreateInMemory("lab"));
  ASSERT_TRUE(BuildLabDatabase(db.get()).ok());
  ObjectBuffer rakesh = *db->GetObject(*db->FirstObject("employee"));
  EXPECT_EQ(rakesh.value.FindField("name")->AsString(), "rakesh");
  Oid dept = rakesh.value.FindField("dept")->AsRef();
  EXPECT_EQ(db->GetObject(dept)->value.FindField("name")->AsString(),
            "research");
}

TEST(LabDbTest, ReferencesAreConsistent) {
  auto db = std::move(*Database::CreateInMemory("lab"));
  ASSERT_TRUE(BuildLabDatabase(db.get()).ok());
  // Every employee's dept contains that employee in its roster.
  std::vector<Oid> all_employees = *db->ScanCluster("employee");
  for (Oid oid : all_employees) {
    ObjectBuffer emp = *db->GetObject(oid);
    Oid dept_oid = emp.value.FindField("dept")->AsRef();
    ObjectBuffer dept = *db->GetObject(dept_oid);
    bool found = false;
    for (const Value& member :
         dept.value.FindField("employees")->elements()) {
      found = found || member.AsRef() == oid;
    }
    EXPECT_TRUE(found) << "employee " << oid.ToString()
                       << " missing from its department roster";
  }
}

TEST(LabDbTest, DeterministicAcrossRuns) {
  auto db1 = std::move(*Database::CreateInMemory("lab"));
  auto db2 = std::move(*Database::CreateInMemory("lab"));
  ASSERT_TRUE(BuildLabDatabase(db1.get()).ok());
  ASSERT_TRUE(BuildLabDatabase(db2.get()).ok());
  std::vector<Oid> employees1 = *db1->ScanCluster("employee");
  for (Oid oid : employees1) {
    EXPECT_EQ(db1->GetObject(oid)->value, db2->GetObject(oid)->value);
  }
}

TEST(LabDbTest, ScalesToConfiguredSizes) {
  LabDbConfig config;
  config.employees = 200;
  config.managers = 10;
  config.departments = 6;
  auto db = std::move(*Database::CreateInMemory("lab"));
  ASSERT_TRUE(BuildLabDatabase(db.get(), config).ok());
  EXPECT_EQ(*db->ClusterCount("employee"), 200u);
  EXPECT_EQ(*db->ClusterCount("manager"), 10u);
  EXPECT_EQ(*db->ClusterCount("department"), 6u);
}

}  // namespace
}  // namespace ode::odb
