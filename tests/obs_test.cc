// Tests for the ode::obs observability subsystem: the metrics
// registry (counters, gauges, log-bucketed histograms, owned
// instruments, exports) and the tracing spans / Chrome trace export.
//
// Metric names use an "obs_test." prefix: the registry is a leaked
// process-wide singleton shared with every other test in this binary,
// so tests assert on names only they touch (plus deltas elsewhere).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"

namespace ode::obs {
namespace {

TEST(MetricsTest, CounterBasics) {
  Registry& registry = Registry::Global();
  Counter* c = registry.counter("obs_test.counter.basics");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
  // Same name, same instrument.
  EXPECT_EQ(registry.counter("obs_test.counter.basics"), c);
}

TEST(MetricsTest, GaugeGoesUpAndDown) {
  Gauge* g = Registry::Global().gauge("obs_test.gauge.basics");
  g->Set(10);
  g->Add(5);
  g->Sub(7);
  EXPECT_EQ(g->value(), 8);
}

TEST(MetricsTest, CountersUnderEightThreads) {
  Counter* c = Registry::Global().counter("obs_test.counter.threads");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c->value(), kThreads * kPerThread);
}

TEST(MetricsTest, HistogramBucketsAndQuantiles) {
  Histogram* h = Registry::Global().histogram("obs_test.hist.buckets");
  // Bucket i holds values of bit width i: 1 -> bucket 1, 2..3 -> 2, ...
  h->Record(0);
  h->Record(1);
  h->Record(2);
  h->Record(3);
  h->Record(1000);
  EXPECT_EQ(h->count(), 5u);
  EXPECT_EQ(h->sum(), 1006u);
  EXPECT_EQ(h->max(), 1000u);
  EXPECT_EQ(h->bucket(0), 1u);  // value 0
  EXPECT_EQ(h->bucket(1), 1u);  // value 1
  EXPECT_EQ(h->bucket(2), 2u);  // values 2, 3
  EXPECT_EQ(h->bucket(10), 1u);  // 1000 has bit width 10
  // p50 lands in bucket 2 (upper bound 3); p99 in the 1000 bucket.
  EXPECT_EQ(h->ApproxQuantile(0.5), 3u);
  EXPECT_EQ(h->ApproxQuantile(0.99), 1023u);
}

TEST(MetricsTest, HistogramUnderEightThreads) {
  Histogram* h = Registry::Global().histogram("obs_test.hist.threads");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h->Record(static_cast<uint64_t>(t) * 1000 + i % 7);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h->count(), kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) bucket_total += h->bucket(i);
  EXPECT_EQ(bucket_total, h->count());
}

TEST(MetricsTest, OwnedInstrumentsAggregateWithShared) {
  Registry& registry = Registry::Global();
  const std::string name = "obs_test.owned.aggregate";
  registry.counter(name)->Add(5);
  auto owned_a = registry.NewOwnedCounter(name);
  auto owned_b = registry.NewOwnedCounter(name);
  owned_a->Add(10);
  owned_b->Add(100);
  // Owned instances stay private...
  EXPECT_EQ(owned_a->value(), 10u);
  EXPECT_EQ(owned_b->value(), 100u);
  // ...while the export aggregates shared + all live owned.
  int64_t exported = -1;
  for (const MetricSample& s : registry.Snapshot()) {
    if (s.name == name) exported = s.value;
  }
  EXPECT_EQ(exported, 115);
}

TEST(MetricsTest, DestroyedOwnedInstrumentRetiresIntoExport) {
  Registry& registry = Registry::Global();
  const std::string name = "obs_test.owned.retired";
  {
    auto owned = registry.NewOwnedCounter(name);
    owned->Add(7);
  }  // owner gone; history must survive
  auto hist_name = std::string("obs_test.owned.retired_hist");
  {
    auto owned = registry.NewOwnedHistogram(hist_name);
    owned->Record(100);
    owned->Record(200);
  }
  int64_t counter_value = -1;
  uint64_t hist_count = 0;
  for (const MetricSample& s : registry.Snapshot()) {
    if (s.name == name) counter_value = s.value;
    if (s.name == hist_name) hist_count = s.count;
  }
  EXPECT_EQ(counter_value, 7);
  EXPECT_EQ(hist_count, 2u);
}

TEST(MetricsTest, PrometheusRenderContainsTypedSeries) {
  Registry& registry = Registry::Global();
  registry.counter("obs_test.prom.counter")->Add(3);
  registry.gauge("obs_test.prom.gauge")->Set(-2);
  registry.histogram("obs_test.prom.hist")->Record(100);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE obs_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_counter 3"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_gauge -2"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_hist_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_hist_count"), std::string::npos);
}

TEST(MetricsTest, JsonRenderIsWellFormed) {
  Registry& registry = Registry::Global();
  registry.counter("obs_test.json.counter")->Add(1);
  registry.histogram("obs_test.json.hist")->Record(50);
  std::string json = registry.RenderJson();
  // Structural sanity: brace balance and the three top-level sections.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json.counter\":"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json.hist\":{\"count\":"),
            std::string::npos);
}

TEST(MetricsTest, TextRenderGroupsByKind) {
  Registry& registry = Registry::Global();
  registry.counter("obs_test.text.counter")->Add(2);
  std::string text = registry.RenderText();
  EXPECT_NE(text.find("-- counters --"), std::string::npos);
  EXPECT_NE(text.find("obs_test.text.counter = 2"), std::string::npos);
}

TEST(MetricsTest, ScopedLatencyTimerRecords) {
  Registry& registry = Registry::Global();
  Histogram* h = registry.histogram("obs_test.timer.hist");
  Counter* c = registry.counter("obs_test.timer.count");
  { ScopedLatencyTimer timer(h, c); }
  EXPECT_EQ(h->count(), 1u);
  EXPECT_EQ(c->value(), 1u);
}

/// Restores the global tracing state (other tests expect it off).
class TracingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracing::Clear();
    Tracing::Enable();
  }
  void TearDown() override {
    Tracing::Disable();
    Tracing::Clear();
  }
};

TEST_F(TracingTest, SpansNestWithDepth) {
  {
    ODE_TRACE_SPAN("obs_test.outer");
    {
      ODE_TRACE_SPAN("obs_test.inner");
    }
  }
  EXPECT_EQ(Tracing::CapturedCount(), 2u);
  std::string json = Tracing::ExportChromeJson();
  // The inner span closes first and carries depth 1; the outer depth 0.
  EXPECT_NE(json.find("\"name\":\"obs_test.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"obs_test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"depth\":1"), std::string::npos);
  EXPECT_NE(json.find("\"depth\":0"), std::string::npos);
}

TEST_F(TracingTest, DisabledSpansRecordNothing) {
  Tracing::Disable();
  {
    ODE_TRACE_SPAN("obs_test.disabled");
  }
  EXPECT_EQ(Tracing::CapturedCount(), 0u);
}

TEST_F(TracingTest, ChromeExportIsWellFormedJson) {
  {
    ODE_TRACE_SPAN("obs_test.export");
  }
  std::string json = Tracing::ExportChromeJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  // Brace/bracket balance outside strings.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(TracingTest, ConcurrentSpansFromManyThreads) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ODE_TRACE_SPAN("obs_test.mt");
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(Tracing::CapturedCount() + Tracing::DroppedCount(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
}

TEST_F(TracingTest, ClearDropsRetainedEvents) {
  {
    ODE_TRACE_SPAN("obs_test.cleared");
  }
  ASSERT_GT(Tracing::CapturedCount(), 0u);
  Tracing::Clear();
  EXPECT_EQ(Tracing::CapturedCount(), 0u);
}

}  // namespace
}  // namespace ode::obs
