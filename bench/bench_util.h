#ifndef ODEVIEW_BENCH_BENCH_UTIL_H_
#define ODEVIEW_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <fstream>
#include <memory>
#include <string>
#include <string_view>

#include "common/metrics.h"
#include "common/trace.h"
#include "dynlink/lab_modules.h"
#include "odb/database.h"
#include "odb/labdb.h"
#include "odeview/app.h"

namespace ode::bench {

/// Aborts the benchmark binary on an unexpected error — benchmarks
/// must not silently measure failure paths.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "benchmark setup failed (%s): %s\n", what,
                 status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T ValueOrDie(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

/// A ready-to-browse OdeView session over the lab database.
struct LabSession {
  std::unique_ptr<odb::Database> db;
  std::unique_ptr<view::OdeViewApp> app;
  view::DbInteractor* interactor = nullptr;

  static LabSession Create(const odb::LabDbConfig& config = {}) {
    LabSession session;
    session.db = ValueOrDie(odb::Database::CreateInMemory("lab"),
                            "create db");
    CheckOk(odb::BuildLabDatabase(session.db.get(), config), "build lab");
    session.app = std::make_unique<view::OdeViewApp>(240, 100);
    CheckOk(dynlink::RegisterLabDisplayModules(session.app->repository(),
                                               "lab", session.db->schema()),
            "register modules");
    CheckOk(session.app->AddDatabaseBorrowed(session.db.get()), "add db");
    CheckOk(session.app->OpenInitialWindow(), "initial window");
    session.interactor =
        ValueOrDie(session.app->OpenDatabase("lab"), "open db");
    return session;
  }
};

/// Benchmark entry point with telemetry flags. Recognizes and strips
///   --metrics-out=PATH   write the registry's JSON export after the run
///   --trace-out=PATH     enable tracing; write Chrome trace-event JSON
///                        (load in chrome://tracing or Perfetto)
/// before handing the remaining arguments to Google Benchmark.
inline int BenchMain(int argc, char** argv) {
  std::string metrics_out;
  std::string trace_out;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    constexpr std::string_view kMetricsFlag = "--metrics-out=";
    constexpr std::string_view kTraceFlag = "--trace-out=";
    if (arg.rfind(kMetricsFlag, 0) == 0) {
      metrics_out = std::string(arg.substr(kMetricsFlag.size()));
    } else if (arg.rfind(kTraceFlag, 0) == 0) {
      trace_out = std::string(arg.substr(kTraceFlag.size()));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (!trace_out.empty()) obs::Tracing::Enable();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::fprintf(stderr, "cannot write metrics to '%s'\n",
                   metrics_out.c_str());
      return 1;
    }
    out << obs::Registry::Global().RenderJson() << "\n";
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot write trace to '%s'\n",
                   trace_out.c_str());
      return 1;
    }
    out << obs::Tracing::ExportChromeJson() << "\n";
  }
  return 0;
}

}  // namespace ode::bench

/// Replacement for BENCHMARK_MAIN() that understands the telemetry
/// flags above.
#define ODE_BENCH_MAIN()                          \
  int main(int argc, char** argv) {               \
    return ::ode::bench::BenchMain(argc, argv);   \
  }                                               \
  int main(int, char**)

#endif  // ODEVIEW_BENCH_BENCH_UTIL_H_
