#ifndef ODEVIEW_BENCH_BENCH_UTIL_H_
#define ODEVIEW_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>

#include "common/journal.h"
#include "common/metrics.h"
#include "common/telemetry_http.h"
#include "common/trace.h"
#include "dynlink/lab_modules.h"
#include "odb/database.h"
#include "odb/labdb.h"
#include "odeview/app.h"

namespace ode::bench {

/// Version of the stamped bench-JSON context contract. Bump when the
/// stamped keys change meaning so downstream tooling can dispatch.
inline constexpr int kBenchSchemaVersion = 1;

/// Stamps provenance into the benchmark JSON "context" section:
/// schema version, UTC run timestamp, and build type. compare_bench.py
/// reads `ode_build_type` to warn when a run is compared against a
/// baseline captured from a different build flavor.
inline void StampBenchContext() {
  benchmark::AddCustomContext("ode_bench_schema",
                              std::to_string(kBenchSchemaVersion));
  std::time_t now = std::time(nullptr);
  std::tm utc;
  if (gmtime_r(&now, &utc) != nullptr) {
    char stamp[32];
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
    benchmark::AddCustomContext("ode_run_timestamp_utc", stamp);
  }
#ifdef NDEBUG
  benchmark::AddCustomContext("ode_build_type", "Release");
#else
  benchmark::AddCustomContext("ode_build_type", "Debug");
#endif
}

/// Aborts the benchmark binary on an unexpected error — benchmarks
/// must not silently measure failure paths.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "benchmark setup failed (%s): %s\n", what,
                 status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T ValueOrDie(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).value();
}

/// A ready-to-browse OdeView session over the lab database.
struct LabSession {
  std::unique_ptr<odb::Database> db;
  std::unique_ptr<view::OdeViewApp> app;
  view::DbInteractor* interactor = nullptr;

  static LabSession Create(const odb::LabDbConfig& config = {}) {
    LabSession session;
    session.db = ValueOrDie(odb::Database::CreateInMemory("lab"),
                            "create db");
    CheckOk(odb::BuildLabDatabase(session.db.get(), config), "build lab");
    session.app = std::make_unique<view::OdeViewApp>(240, 100);
    CheckOk(dynlink::RegisterLabDisplayModules(session.app->repository(),
                                               "lab", session.db->schema()),
            "register modules");
    CheckOk(session.app->AddDatabaseBorrowed(session.db.get()), "add db");
    CheckOk(session.app->OpenInitialWindow(), "initial window");
    session.interactor =
        ValueOrDie(session.app->OpenDatabase("lab"), "open db");
    return session;
  }
};

/// Benchmark entry point with telemetry flags. Recognizes and strips
///   --metrics-out=PATH    write the registry's JSON export after the run
///   --trace-out=PATH      enable tracing; write Chrome trace-event JSON
///                         (load in chrome://tracing or Perfetto)
///   --journal-out=PATH    write the flight-recorder journal tail as
///                         JSON lines after the run
///   --telemetry-port=N    serve /metrics, /journal and /trace over
///                         HTTP on 127.0.0.1:N (0 = ephemeral port)
///                         for the benchmark's lifetime
///   --telemetry-hold=SEC  keep the process (and the endpoint) alive
///                         SEC seconds after the benchmarks finish so
///                         an external scraper can collect final state
/// before handing the remaining arguments to Google Benchmark.
inline int BenchMain(int argc, char** argv) {
  std::string metrics_out;
  std::string trace_out;
  std::string journal_out;
  int telemetry_port = -1;
  int telemetry_hold_s = 0;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    constexpr std::string_view kMetricsFlag = "--metrics-out=";
    constexpr std::string_view kTraceFlag = "--trace-out=";
    constexpr std::string_view kJournalFlag = "--journal-out=";
    constexpr std::string_view kPortFlag = "--telemetry-port=";
    constexpr std::string_view kHoldFlag = "--telemetry-hold=";
    if (arg.rfind(kMetricsFlag, 0) == 0) {
      metrics_out = std::string(arg.substr(kMetricsFlag.size()));
    } else if (arg.rfind(kTraceFlag, 0) == 0) {
      trace_out = std::string(arg.substr(kTraceFlag.size()));
    } else if (arg.rfind(kJournalFlag, 0) == 0) {
      journal_out = std::string(arg.substr(kJournalFlag.size()));
    } else if (arg.rfind(kPortFlag, 0) == 0) {
      telemetry_port =
          std::atoi(std::string(arg.substr(kPortFlag.size())).c_str());
    } else if (arg.rfind(kHoldFlag, 0) == 0) {
      telemetry_hold_s =
          std::atoi(std::string(arg.substr(kHoldFlag.size())).c_str());
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (!trace_out.empty()) obs::Tracing::Enable();
  obs::TelemetryServer telemetry_server;
  if (telemetry_port >= 0) {
    Status started =
        telemetry_server.Start(static_cast<uint16_t>(telemetry_port));
    if (!started.ok()) {
      std::fprintf(stderr, "telemetry endpoint: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "telemetry endpoint listening on port %u\n",
                 telemetry_server.port());
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  StampBenchContext();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (telemetry_hold_s > 0) {
    std::fprintf(stderr, "holding telemetry endpoint for %d s\n",
                 telemetry_hold_s);
    std::this_thread::sleep_for(std::chrono::seconds(telemetry_hold_s));
  }
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::fprintf(stderr, "cannot write metrics to '%s'\n",
                   metrics_out.c_str());
      return 1;
    }
    out << obs::Registry::Global().RenderJson() << "\n";
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot write trace to '%s'\n",
                   trace_out.c_str());
      return 1;
    }
    out << obs::Tracing::ExportChromeJson() << "\n";
  }
  if (!journal_out.empty()) {
    std::ofstream out(journal_out);
    if (!out) {
      std::fprintf(stderr, "cannot write journal to '%s'\n",
                   journal_out.c_str());
      return 1;
    }
    out << obs::Journal::Global().ExportJsonLines();
  }
  return 0;
}

}  // namespace ode::bench

/// Replacement for BENCHMARK_MAIN() that understands the telemetry
/// flags above.
#define ODE_BENCH_MAIN()                          \
  int main(int argc, char** argv) {               \
    return ::ode::bench::BenchMain(argc, argv);   \
  }                                               \
  int main(int, char**)

#endif  // ODEVIEW_BENCH_BENCH_UTIL_H_
