#include "odb/typecheck.h"

#include <unordered_set>

namespace ode::odb {

namespace {

Status Mismatch(std::string_view context, const TypeRef& type,
                const Value& value) {
  return Status::InvalidArgument(
      std::string(context) + ": expected " + type.ToString() + ", got " +
      std::string(ValueKindName(value.kind())));
}

/// True iff `candidate` is `base` or a descendant of `base`.
bool IsSubclassOf(const Schema& schema, std::string_view candidate,
                  std::string_view base) {
  if (candidate == base) return true;
  Result<std::vector<std::string>> ancestors = schema.Ancestors(candidate);
  if (!ancestors.ok()) return false;
  for (const std::string& a : *ancestors) {
    if (a == base) return true;
  }
  return false;
}

}  // namespace

Status TypeCheckValue(const Schema& schema, const TypeRef& type,
                      const Value& value, std::string_view context) {
  if (value.is_null()) return Status::OK();  // uninitialized attribute
  switch (type.kind) {
    case TypeRef::Kind::kVoid:
      return Status::InvalidArgument(std::string(context) +
                                     ": member of type void");
    case TypeRef::Kind::kBool:
      if (value.kind() == ValueKind::kBool) return Status::OK();
      return Mismatch(context, type, value);
    case TypeRef::Kind::kInt:
      if (value.kind() == ValueKind::kInt ||
          value.kind() == ValueKind::kBool) {
        return Status::OK();
      }
      return Mismatch(context, type, value);
    case TypeRef::Kind::kReal:
      if (value.kind() == ValueKind::kReal ||
          value.kind() == ValueKind::kInt) {
        return Status::OK();
      }
      return Mismatch(context, type, value);
    case TypeRef::Kind::kString:
      if (value.kind() == ValueKind::kString) return Status::OK();
      return Mismatch(context, type, value);
    case TypeRef::Kind::kBlob:
      if (value.kind() == ValueKind::kBlob ||
          value.kind() == ValueKind::kString) {
        return Status::OK();
      }
      return Mismatch(context, type, value);
    case TypeRef::Kind::kRef: {
      if (value.kind() != ValueKind::kRef) {
        return Mismatch(context, type, value);
      }
      if (value.AsRef().IsNull()) return Status::OK();
      if (!IsSubclassOf(schema, value.RefClass(), type.class_name)) {
        return Status::InvalidArgument(
            std::string(context) + ": reference to '" + value.RefClass() +
            "' is not compatible with '" + type.class_name + "*'");
      }
      return Status::OK();
    }
    case TypeRef::Kind::kClass: {
      if (value.kind() != ValueKind::kStruct) {
        return Mismatch(context, type, value);
      }
      return TypeCheckObject(schema, type.class_name, value);
    }
    case TypeRef::Kind::kSet:
    case TypeRef::Kind::kArray: {
      bool ok_kind = type.kind == TypeRef::Kind::kSet
                         ? value.kind() == ValueKind::kSet
                         : value.kind() == ValueKind::kArray;
      if (!ok_kind) return Mismatch(context, type, value);
      if (type.kind == TypeRef::Kind::kArray && type.array_size != 0 &&
          value.elements().size() != type.array_size) {
        return Status::InvalidArgument(
            std::string(context) + ": array expects " +
            std::to_string(type.array_size) + " elements, got " +
            std::to_string(value.elements().size()));
      }
      if (type.element == nullptr) {
        return Status::Internal(std::string(context) +
                                ": container type missing element type");
      }
      for (size_t i = 0; i < value.elements().size(); ++i) {
        ODE_RETURN_IF_ERROR(
            TypeCheckValue(schema, *type.element, value.elements()[i],
                           std::string(context) + "[" + std::to_string(i) +
                               "]"));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled type kind");
}

Status TypeCheckObject(const Schema& schema, std::string_view class_name,
                       const Value& value) {
  if (value.kind() != ValueKind::kStruct) {
    return Status::InvalidArgument("object of class '" +
                                   std::string(class_name) +
                                   "' must be a struct value");
  }
  ODE_ASSIGN_OR_RETURN(std::vector<MemberDef> members,
                       schema.AllMembers(class_name));
  std::unordered_set<std::string> declared;
  for (const MemberDef& m : members) {
    declared.insert(m.name);
    const Value* field = value.FindField(m.name);
    if (field == nullptr) {
      return Status::InvalidArgument("object of class '" +
                                     std::string(class_name) +
                                     "' is missing member '" + m.name + "'");
    }
    ODE_RETURN_IF_ERROR(
        TypeCheckValue(schema, m.type, *field,
                       std::string(class_name) + "." + m.name));
  }
  for (const Value::Field& f : value.fields()) {
    if (declared.find(f.name) == declared.end()) {
      return Status::InvalidArgument("object of class '" +
                                     std::string(class_name) +
                                     "' has undeclared member '" + f.name +
                                     "'");
    }
  }
  return Status::OK();
}

namespace {
Result<Value> DefaultForType(const Schema& schema, const TypeRef& type);
}  // namespace

Result<Value> DefaultInstance(const Schema& schema,
                              std::string_view class_name) {
  ODE_ASSIGN_OR_RETURN(std::vector<MemberDef> members,
                       schema.AllMembers(class_name));
  std::vector<Value::Field> fields;
  fields.reserve(members.size());
  for (const MemberDef& m : members) {
    ODE_ASSIGN_OR_RETURN(Value v, DefaultForType(schema, m.type));
    fields.push_back({m.name, std::move(v)});
  }
  return Value::Struct(std::move(fields));
}

namespace {
Result<Value> DefaultForType(const Schema& schema, const TypeRef& type) {
  switch (type.kind) {
    case TypeRef::Kind::kVoid:
      return Status::InvalidArgument("member of type void");
    case TypeRef::Kind::kBool:
      return Value::Bool(false);
    case TypeRef::Kind::kInt:
      return Value::Int(0);
    case TypeRef::Kind::kReal:
      return Value::Real(0.0);
    case TypeRef::Kind::kString:
      return Value::String("");
    case TypeRef::Kind::kBlob:
      return Value::Blob("");
    case TypeRef::Kind::kRef:
      return Value::Ref(Oid::Null(), type.class_name);
    case TypeRef::Kind::kClass:
      return DefaultInstance(schema, type.class_name);
    case TypeRef::Kind::kSet:
      return Value::Set({});
    case TypeRef::Kind::kArray: {
      std::vector<Value> elements;
      if (type.element != nullptr) {
        for (uint32_t i = 0; i < type.array_size; ++i) {
          ODE_ASSIGN_OR_RETURN(Value v, DefaultForType(schema, *type.element));
          elements.push_back(std::move(v));
        }
      }
      return Value::Array(std::move(elements));
    }
  }
  return Status::Internal("unhandled type kind");
}
}  // namespace

}  // namespace ode::odb
