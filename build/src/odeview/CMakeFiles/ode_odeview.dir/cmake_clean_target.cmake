file(REMOVE_RECURSE
  "libode_odeview.a"
)
