#include "common/lock_rank.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/journal.h"
#include "common/metrics.h"
#include "common/threading.h"

namespace ode {

namespace {

// One entry per lock the calling thread currently holds. Fixed-size so
// the validator never allocates on an acquisition path; the deepest
// legal chain (schema -> heap -> free list -> latch -> shard -> pager
// -> trace buffer) is well under half of this.
constexpr size_t kMaxHeld = 32;

struct HeldEntry {
  uint16_t rank = 0;
  bool exclusive = true;
  const char* name = nullptr;
  const void* instance = nullptr;
};

thread_local HeldEntry tls_held[kMaxHeld];
thread_local uint32_t tls_held_count = 0;
// Overflow beyond kMaxHeld: excess holds go untracked but releases
// must still balance, so the depth is counted separately.
thread_local uint32_t tls_untracked = 0;
// Reentrancy guard: reporting a violation may itself take ranked locks
// (the metrics registry on the counter's first use).
thread_local bool tls_in_validator = false;

std::atomic<int> g_mode{
#ifdef NDEBUG
    static_cast<int>(LockRankValidator::Mode::kCount)
#else
    static_cast<int>(LockRankValidator::Mode::kAbort)
#endif
};

std::atomic<uint64_t> g_violations{0};

obs::Counter* ViolationsCounter() {
  static obs::Counter* c = [] {
    obs::Registry& registry = obs::Registry::Global();
    registry.SetHelp("lockrank.violations.total",
                     "Lock acquisitions that broke the documented rank "
                     "order (potential deadlocks)");
    return registry.counter("lockrank.violations.total");
  }();
  return c;
}

void WriteStderr(const char* s) {
  ssize_t ignored = ::write(STDERR_FILENO, s, std::strlen(s));
  (void)ignored;
}

// Dumps the calling thread's held-lock stack to stderr without
// allocating (the abort path may run under arbitrary lock state).
void DumpHeldLocks() {
  char line[160];
  int n = std::snprintf(line, sizeof(line),
                        "-- held locks (thread=%u, %u tracked) --\n",
                        CurrentThreadId(), tls_held_count);
  if (n > 0) WriteStderr(line);
  for (uint32_t i = 0; i < tls_held_count; ++i) {
    n = std::snprintf(line, sizeof(line), "  #%u rank=%u %s\n", i,
                      tls_held[i].rank,
                      tls_held[i].name != nullptr ? tls_held[i].name : "?");
    if (n > 0) WriteStderr(line);
  }
}

void ReportViolation(LockRank rank, const char* name, uint16_t held_rank,
                     const char* kind) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  if (tls_in_validator) return;  // re-entered while reporting: count only
  tls_in_validator = true;
  ViolationsCounter()->Increment();
  obs::Journal::Global().Append(obs::JournalEvent::kLockRankViolation,
                                static_cast<int64_t>(rank),
                                static_cast<int64_t>(held_rank), name);
  tls_in_validator = false;
  if (LockRankValidator::mode() == LockRankValidator::Mode::kAbort) {
    char line[200];
    int n = std::snprintf(
        line, sizeof(line),
        "\n=== lock rank violation (%s): acquiring %s (rank %u) while "
        "holding rank %u ===\n",
        kind, name != nullptr ? name : "?", static_cast<unsigned>(rank),
        static_cast<unsigned>(held_rank));
    if (n > 0) WriteStderr(line);
    DumpHeldLocks();
    WriteStderr("-- journal tail --\n");
    obs::Journal::Global().DumpTail(STDERR_FILENO);
    WriteStderr("=== aborting ===\n");
    std::abort();
  }
}

void Push(LockRank rank, const char* name, const void* instance,
          bool exclusive) {
  if (tls_held_count < kMaxHeld) {
    HeldEntry& e = tls_held[tls_held_count++];
    e.rank = static_cast<uint16_t>(rank);
    e.exclusive = exclusive;
    e.name = name;
    e.instance = instance;
  } else {
    ++tls_untracked;
  }
}

// Shared-mode re-acquire of a same-rank-stackable lock (a reader
// fetching the same page through two handles) is tolerated; any
// exclusive involvement is a hard recursion bug.
bool IsRecursion(const HeldEntry& held, const void* instance, bool exclusive,
                 bool allow_same) {
  if (held.instance != instance) return false;
  return exclusive || held.exclusive || !allow_same;
}

}  // namespace

const std::vector<LockRankInfo>& LockRankTable() {
  static const std::vector<LockRankInfo>* table = new std::vector<LockRankInfo>{
      {LockRank::kDbSchema, "db.schema_lock", false, true},
      // Held for the whole of one logged write operation (DML or DDL
      // body through the commit-record append), so a wedged writer
      // surfaces in crash dumps.
      {LockRank::kWalTxn, "db.wal_txn_lock", false, true},
      {LockRank::kDbHeaps, "db.heaps_lock", false, false},
      {LockRank::kHeapFile, "heap.rwlock", false, false},
      {LockRank::kCatalogId, "catalog.id_lock", false, false},
      {LockRank::kDbTrigger, "db.trigger_lock", false, false},
      {LockRank::kDbPredicate, "db.predicate_lock", false, false},
      {LockRank::kFreeList, "catalog.free_list_lock", false, false},
      // Same-rank stacking: a single thread may pin several pages at
      // once (fuzz harnesses, blob chains); see docs/LOCKING.md.
      {LockRank::kPoolFrameLatch, "pool.frame_latch", true, true},
      // Between the frame latch and the shard mutex: heap read-ahead
      // sites may hold a latch when they consult the affinity prefetch
      // source, and the source pointer swap never enters a shard.
      {LockRank::kClusterPrefetchSource, "pool.prefetch_source_lock", false,
       false},
      {LockRank::kPoolShard, "pool.shard_lock", false, false},
      // Above the shard mutex: eviction gates a dirty write-back on
      // WAL durability while inside the shard. Never held across the
      // group-commit fsync (the leader syncs with the mutex dropped).
      {LockRank::kWal, "wal.buffer_lock", false, false},
      // The Wal serializes every mutating store call under rank 75, so
      // the store's own mutex only ever nests directly beneath it.
      {LockRank::kWalStore, "wal.store_lock", false, false},
      // MemPager's mutex and FilePager's extend lock share the rank:
      // one pager backs a pool, so the two are never nested.
      {LockRank::kPager, "pager.lock", false, false},
      {LockRank::kBackgroundWorker, "worker.queue_lock", false, false},
      {LockRank::kWatchdogScan, "watchdog.scan_lock", false, false},
      {LockRank::kWatchdogWake, "watchdog.wake_lock", false, false},
      {LockRank::kWatchdogRefresh, "watchdog.refresh_lock", false, false},
      // Access observatory: the time-series fold and the capture-file
      // writer sit above every engine lock (charge sites may hold heap
      // / latch / shard / pager locks when they record) and below the
      // session registry and metrics registry, so both may still
      // create instruments or snapshot the registry while held.
      {LockRank::kTimeSeries, "obs.timeseries_lock", false, false},
      {LockRank::kAccessCapture, "obs.access_capture_lock", false, false},
      // Session inspector / slow-op ring: registered below the metrics
      // registry so render paths may still create instruments.
      {LockRank::kSessionRegistry, "obs.session_registry_lock", false,
       false},
      {LockRank::kSlowOpLog, "obs.slow_op_lock", false, false},
      {LockRank::kMetricsRegistry, "obs.registry_lock", false, false},
      {LockRank::kTraceDirectory, "trace.directory_lock", false, false},
      // Same-rank stacking: OpenSpans/export paths iterate thread
      // buffers one at a time, but the crash dumper try-locks buffers
      // while holding the directory only — still, allow a scan that
      // holds one buffer lock while probing the next via try-lock.
      {LockRank::kTraceBuffer, "trace.buffer_lock", true, false},
      {LockRank::kJournalIntern, "journal.intern_lock", false, false},
  };
  return *table;
}

const LockRankInfo* FindLockRankInfo(LockRank rank) {
  for (const LockRankInfo& info : LockRankTable()) {
    if (info.rank == rank) return &info;
  }
  return nullptr;
}

const char* LockRankName(LockRank rank) {
  const LockRankInfo* info = FindLockRankInfo(rank);
  return info != nullptr ? info->name : "unknown";
}

LockRankValidator::Mode LockRankValidator::mode() {
  return static_cast<Mode>(g_mode.load(std::memory_order_relaxed));
}

void LockRankValidator::SetMode(Mode mode) {
  g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

void LockRankValidator::OnAcquire(LockRank rank, const char* name,
                                  const void* instance, bool exclusive) {
  if (mode() == Mode::kOff || tls_in_validator) return;
  const auto new_rank = static_cast<uint16_t>(rank);
  const LockRankInfo* info = FindLockRankInfo(rank);
  const bool allow_same = info != nullptr && info->allow_same_rank;
  for (uint32_t i = 0; i < tls_held_count; ++i) {
    const HeldEntry& held = tls_held[i];
    if (IsRecursion(held, instance, exclusive, allow_same)) {
      ReportViolation(rank, name, held.rank, "recursive acquire");
      break;
    }
    if (held.instance != instance &&
        (held.rank > new_rank || (held.rank == new_rank && !allow_same))) {
      ReportViolation(rank, name, held.rank, "out-of-order acquire");
      break;
    }
  }
  Push(rank, name, instance, exclusive);
}

void LockRankValidator::OnTryAcquire(LockRank rank, const char* name,
                                     const void* instance, bool exclusive) {
  if (mode() == Mode::kOff || tls_in_validator) return;
  const LockRankInfo* info = FindLockRankInfo(rank);
  const bool allow_same = info != nullptr && info->allow_same_rank;
  // A successful try-acquire cannot have blocked, so rank order is not
  // enforced — but re-acquiring an instance this thread already holds
  // is UB for the underlying primitive and flagged.
  for (uint32_t i = 0; i < tls_held_count; ++i) {
    if (IsRecursion(tls_held[i], instance, exclusive, allow_same)) {
      ReportViolation(rank, name, tls_held[i].rank, "recursive try-acquire");
      break;
    }
  }
  Push(rank, name, instance, exclusive);
}

void LockRankValidator::OnRelease(const void* instance) {
  if (mode() == Mode::kOff) return;
  // Remove the topmost entry for `instance` (LIFO is the common case;
  // a linear scan keeps out-of-order releases correct too).
  for (uint32_t i = tls_held_count; i > 0; --i) {
    if (tls_held[i - 1].instance == instance) {
      for (uint32_t j = i - 1; j + 1 < tls_held_count; ++j) {
        tls_held[j] = tls_held[j + 1];
      }
      --tls_held_count;
      return;
    }
  }
  if (tls_untracked > 0) --tls_untracked;
}

uint64_t LockRankValidator::violations() {
  return g_violations.load(std::memory_order_relaxed);
}

size_t LockRankValidator::HeldCount() {
  return tls_held_count + tls_untracked;
}

std::string LockRankValidator::HeldReport() {
  std::ostringstream os;
  os << "thread " << CurrentThreadId() << " holds " << tls_held_count
     << " tracked lock(s)";
  if (tls_untracked > 0) os << " (+" << tls_untracked << " untracked)";
  os << "\n";
  for (uint32_t i = 0; i < tls_held_count; ++i) {
    os << "  #" << i << " rank=" << tls_held[i].rank << " "
       << (tls_held[i].name != nullptr ? tls_held[i].name : "?") << "\n";
  }
  return os.str();
}

}  // namespace ode
