# Empty compiler generated dependencies file for ode_owl.
# This may be replaced when dependencies are built.
