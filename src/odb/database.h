#ifndef ODEVIEW_ODB_DATABASE_H_
#define ODEVIEW_ODB_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/journal.h"
#include "common/metrics.h"
#include "common/op_profile.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/threading.h"
#include "common/trace.h"
#include "common/status.h"
#include "odb/buffer_pool.h"
#include "odb/catalog.h"
#include "odb/exec/compiled_predicate.h"
#include "odb/heap_file.h"
#include "odb/oid.h"
#include "odb/pager.h"
#include "odb/predicate.h"
#include "odb/schema.h"
#include "odb/value.h"
#include "odb/wal.h"

namespace ode::odb {

namespace exec {
// Defined in odb/exec/explain.h (which includes this header — the
// explain API is therefore only forward-declared here).
struct ExplainResult;
}  // namespace exec

namespace cluster {
// Defined in odb/cluster/plan.h. The odb core only forward-declares
// the clustering subsystem (ode-lint enforces that no core file
// includes odb/cluster/); Database::Recluster's body lives in
// odb/cluster/reorganizer.cc.
struct ClusterPlan;
}  // namespace cluster

/// The in-memory copy of a persistent object — the paper's "object
/// buffer" that the object manager hands to display functions.
struct ObjectBuffer {
  Oid oid;
  std::string class_name;
  uint32_t version = 1;
  Value value;
};

/// One batch from the raw scan primitive: consecutive records of a
/// cluster, their stored `ObjectRecord` bytes packed back to back in
/// one arena. The batched executor decodes the spans under a
/// projection mask instead of materializing full buffers; reusing the
/// batch across calls makes the raw read allocation-free once warm.
struct RawRecordBatch {
  ClusterId cluster = 0;
  std::string arena;
  std::vector<HeapFile::RecordSpan> records;

  std::string_view bytes(const HeapFile::RecordSpan& span) const {
    return std::string_view(arena).substr(span.offset, span.length);
  }
  void clear() {
    cluster = 0;
    arena.clear();
    records.clear();
  }
};

/// A record of one trigger firing (the simulated trigger action queue).
struct TriggerFiring {
  std::string class_name;
  Oid oid;
  std::string trigger_name;
  std::string action;
  TriggerEvent event = TriggerEvent::kUpdate;
};

/// Tuning knobs for a database instance.
struct DatabaseOptions {
  /// Buffer-pool frames (pages held in memory).
  size_t buffer_pool_pages = 256;
  /// Versions retained per object of a `versioned` class (oldest
  /// versions are dropped beyond the limit).
  size_t version_history_limit = 8;
  /// On-disk databases: checkpoint (flush + truncate the WAL) after a
  /// commit leaves the log larger than this many bytes.
  size_t wal_checkpoint_bytes = 4u << 20;
  /// On-disk databases: fsync the WAL on commit. Off = no durability
  /// guarantee on power loss (crash consistency is still preserved —
  /// recovery replays whatever prefix survived).
  bool wal_sync = true;
  /// Batch concurrent commits behind one fsync (see WalOptions).
  bool wal_group_commit = true;
};

class Session;

/// One Ode database: schema catalog + clusters of persistent objects.
///
/// This is the stand-in for the Ode object manager the paper's OdeView
/// calls into: it materializes stored objects into `ObjectBuffer`s,
/// sequences through clusters (`first` / `next` / `previous`), filters
/// with selection predicates, and enforces O++ constraints/triggers.
///
/// Thread-safety: object-level operations (create/get/update/delete,
/// sequencing, scans, selects) may be called from any number of
/// threads — open a `Session` per worker with `OpenSession()`. Schema
/// operations (DefineSchema/AddClass/AlterClass/DropClass) and
/// `Sync()` take an exclusive lock that drains all in-flight object
/// operations first. Accessors returning references into internal
/// state (`schema()`, `trigger_log()`) are only stable while no
/// concurrent schema change / DML runs.
class Database {
 public:
  /// Creates a volatile database (MemPager).
  static Result<std::unique_ptr<Database>> CreateInMemory(
      std::string name, DatabaseOptions options = {});
  /// Creates a new database file at `path`.
  static Result<std::unique_ptr<Database>> CreateOnDisk(
      const std::string& path, std::string name,
      DatabaseOptions options = {});
  /// Opens an existing database file.
  static Result<std::unique_ptr<Database>> OpenOnDisk(
      const std::string& path, DatabaseOptions options = {});

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const std::string& name() const;
  const Schema& schema() const { return catalog_->schema(); }

  // --- Schema (DDL) ---------------------------------------------------

  /// Parses O++ DDL and adds every class it defines (creating clusters
  /// for persistent classes). Validates the combined schema and
  /// persists the catalog. OdeView itself never calls this: schema
  /// changes happen out-of-band, which is why the paper dynamic-links
  /// display functions instead of compiling them in.
  Status DefineSchema(std::string_view ddl);

  /// Adds one class programmatically.
  Status AddClass(ClassDef def);

  /// Drops a class; its cluster must be empty and no other class may
  /// derive from or reference it.
  Status DropClass(const std::string& class_name);

  /// Schema evolution: replaces the definition of an existing class
  /// and migrates every stored object of that class (and of its
  /// descendants, whose effective member set may change):
  ///  * members added by the new definition are filled with defaults;
  ///  * members removed are dropped from stored objects;
  ///  * members whose type changed are reset to the new default;
  ///  * bases may not change (that would reparent clusters).
  /// The caller is expected to notify open OdeViews via
  /// `DbInteractor::OnClassChanged` afterwards.
  Status AlterClass(ClassDef def);

  Result<const ClassDef*> GetClass(const std::string& class_name) const {
    return schema().GetClass(class_name);
  }

  // --- Objects (DML) --------------------------------------------------

  /// Creates a persistent object of `class_name` from `value`
  /// (type-checked, constraint-checked; fires on_create triggers).
  Result<Oid> CreateObject(const std::string& class_name, Value value);

  /// Materializes the stored object into an ObjectBuffer.
  Result<ObjectBuffer> GetObject(Oid oid);

  /// Fetches a historical version of an object of a versioned class.
  Result<ObjectBuffer> GetObjectVersion(Oid oid, uint32_t version);

  /// Lists retained version numbers, oldest first (current included).
  Result<std::vector<uint32_t>> ListVersions(Oid oid);

  /// Replaces the object's value (type/constraint-checked; bumps the
  /// version; retains history for versioned classes; fires triggers).
  Status UpdateObject(Oid oid, Value value);

  /// Deletes the object (fires on_delete triggers).
  Status DeleteObject(Oid oid);

  // --- Cluster sequencing (the object-set window's control panel) -----

  Result<uint64_t> ClusterCount(const std::string& class_name);
  Result<ClusterId> ClusterOf(const std::string& class_name) const;
  Result<std::string> ClassOfCluster(ClusterId id) const;

  Result<Oid> FirstObject(const std::string& class_name);
  Result<Oid> LastObject(const std::string& class_name);
  Result<Oid> NextObject(Oid oid);
  Result<Oid> PrevObject(Oid oid);

  /// Fused step: the full buffer of the object after / before `oid`,
  /// in one lock round-trip (equivalent to NextObject + GetObject but
  /// about half the cost — the cursor's hot path).
  Result<ObjectBuffer> NextObjectBuffer(Oid oid);
  Result<ObjectBuffer> PrevObjectBuffer(Oid oid);

  /// Batched step: up to `limit` consecutive buffers after / before
  /// `oid` in one lock round-trip. `ObjectCursor` uses this for its
  /// read-ahead; the batch reflects the state at call time, so pair it
  /// with `mutation_epoch()` when staleness matters.
  Result<std::vector<ObjectBuffer>> NextObjectBuffers(Oid oid, size_t limit);
  Result<std::vector<ObjectBuffer>> PrevObjectBuffers(Oid oid, size_t limit);

  /// Counter bumped by every successful mutation (schema changes and
  /// object create/update/delete). Lets cursors and caches detect that
  /// previously fetched state may be stale.
  uint64_t mutation_epoch() const {
    return mutation_epoch_.load(std::memory_order_acquire);
  }

  /// OIDs of every object in the cluster, creation order.
  Result<std::vector<Oid>> ScanCluster(const std::string& class_name);

  /// Deep extent: the class's own cluster plus the clusters of all its
  /// descendants (e.g. employees *and* managers), creation order
  /// within each cluster, base cluster first.
  Result<std::vector<Oid>> ScanClusterDeep(const std::string& class_name);

  /// OIDs of objects satisfying `predicate`, creation order (§5.2:
  /// the object manager filters objects retrieved from the database).
  /// Runs on the batched executor: projection is pushed into the
  /// record decode and the predicate is evaluated in compiled form.
  Result<std::vector<Oid>> Select(const std::string& class_name,
                                  const Predicate& predicate);

  /// EXPLAIN [ANALYZE] for a `Select` over one class: the static plan
  /// (strategy, projection, compiled program size), plus — with
  /// `analyze` — the executed plan's rows, pages, and wall time.
  Result<exec::ExplainResult> ExplainSelect(const std::string& class_name,
                                            const Predicate& predicate,
                                            bool analyze);

  /// EXPLAIN [ANALYZE] for a join between two classes (predicate over
  /// `left.<attr>` / `right.<attr>` paths).
  Result<exec::ExplainResult> ExplainJoin(const std::string& left_class,
                                          const std::string& right_class,
                                          const Predicate& predicate,
                                          bool analyze);

  /// Raw batched scan primitive for the executor: up to `limit`
  /// (local id, record bytes) pairs with id greater than `after`, in
  /// one lock round-trip. An exhausted scan returns an empty batch
  /// (never OutOfRange). The schema lock is held per call, not across
  /// the whole scan, so partitions interleave with mutations; callers
  /// needing a stable snapshot bound the scan by `mutation_epoch()`.
  /// `*out` is cleared (capacity retained) then refilled, so a looping
  /// caller reuses the arena instead of reallocating per batch.
  Status ScanRawRecords(const std::string& class_name, uint64_t after,
                        size_t limit, RawRecordBatch* out);

  // --- Triggers --------------------------------------------------------

  /// Fired triggers since the last `ClearTriggerLog()`.
  /// Lock-free read by design: returns a reference into `trigger_log_`,
  /// so it cannot hold `trigger_mu_` for the caller. Only stable while
  /// no concurrent DML runs (see the class comment); tests and the
  /// single-threaded UI read it between operations.
  const std::vector<TriggerFiring>& trigger_log() const
      ODE_NO_THREAD_SAFETY_ANALYSIS {
    return trigger_log_;
  }
  void ClearTriggerLog() {
    MutexLock lock(trigger_mu_);
    trigger_log_.clear();
  }

  // --- Maintenance -----------------------------------------------------

  /// Applies a clustering plan online: moves records page-by-page so
  /// each plan group shares a heap page. Runs under the shared schema
  /// lock with one WAL transaction per page group (full-page redo
  /// images — a kill -9 mid-recluster recovers to a group boundary),
  /// and OIDs stay stable because lookups resolve through the heap's
  /// id→location directory. Records deleted since the plan was built
  /// are skipped. Defined in odb/cluster/reorganizer.cc.
  Status Recluster(const cluster::ClusterPlan& plan);

  /// Physical placement (page, slot, stored bytes) of every record of
  /// `class_name`'s cluster — the clustering advisor's packing input.
  Result<std::vector<HeapFile::Placement>> ClusterPlacements(
      const std::string& class_name);

  /// Flushes dirty pages, persists the catalog, and (on-disk) runs a
  /// checkpoint so the data file alone holds the full state.
  Status Sync();

  /// Checkpoints the WAL: flushes every committed dirty page, syncs the
  /// data file, and truncates the log. Phase 1 runs fuzzy (concurrent
  /// writers keep going); phase 2 briefly quiesces writers. No-op for
  /// in-memory databases beyond a flush.
  Status Checkpoint();

  /// Text report of every metric in the global `obs::Registry` — the
  /// runtime inspector's data source. Deliberately consumes only
  /// registry data (never engine internals), mirroring the paper's
  /// separation between the application and the tool observing it.
  std::string DumpTelemetry() const;

  BufferPool* buffer_pool() { return pool_.get(); }
  /// The write-ahead log (nullptr for in-memory databases).
  Wal* wal() { return wal_.get(); }
  const DatabaseOptions& options() const { return options_; }

  // --- Sessions ---------------------------------------------------------

  /// Opens a session: a lightweight handle for one concurrent client
  /// (one browser window / worker thread). Sessions forward to the
  /// database's thread-safe object operations and are tracked so the
  /// engine knows how many clients are active.
  Session OpenSession();
  /// Sessions currently open.
  int active_sessions() const {
    return active_sessions_->load(std::memory_order_relaxed);
  }

 private:
  friend class Session;
  Database(std::unique_ptr<Pager> pager, std::unique_ptr<BufferPool> pool,
           DatabaseOptions options)
      : pager_(std::move(pager)),
        pool_(std::move(pool)),
        options_(options) {}

  /// Loads (and caches) the heap file of a cluster. The returned
  /// pointer stays valid only while `schema_mu_` is held (a schema
  /// change may drop the heap).
  Result<HeapFile*> GetHeap(ClusterId id) ODE_REQUIRES_SHARED(schema_mu_);

  /// Unlocked implementations (callers hold `schema_mu_`).
  Result<ObjectBuffer> GetObjectUnlocked(Oid oid)
      ODE_REQUIRES_SHARED(schema_mu_);
  Result<std::vector<ObjectBuffer>> StepObjectBuffers(Oid oid, bool forward,
                                                      size_t limit)
      ODE_REQUIRES_SHARED(schema_mu_);
  void BumpMutationEpoch() {
    uint64_t epoch =
        mutation_epoch_.fetch_add(1, std::memory_order_release) + 1;
    static obs::Counter* bumps =
        obs::Registry::Global().counter("db.epoch_bumps");
    bumps->Increment();
    obs::Journal::Global().Append(obs::JournalEvent::kEpochBump,
                                  static_cast<int64_t>(epoch));
  }
  Result<std::vector<Oid>> ScanClusterUnlocked(const std::string& class_name)
      ODE_REQUIRES_SHARED(schema_mu_);

  /// Adds one class + cluster; optionally validates and persists.
  Status AddClassInternal(ClassDef def, bool persist)
      ODE_REQUIRES(schema_mu_);

  /// Checkpoint body (callers hold `schema_mu_` in either mode).
  Status CheckpointLocked() ODE_REQUIRES_SHARED(schema_mu_);
  /// Checkpoints when the log has outgrown `wal_checkpoint_bytes`
  /// (called after DML commits; must not hold `wal_txn_mu_`).
  Status MaybeCheckpointLocked() ODE_REQUIRES_SHARED(schema_mu_);

  /// Default value for one member (used by AlterClass migration).
  Result<Value> DefaultMemberValue(const MemberDef& member);

  /// Runs constraint checks for the class and its ancestors.
  Status CheckConstraints(const std::string& class_name, const Value& value)
      ODE_REQUIRES_SHARED(schema_mu_);

  /// Evaluates and logs triggers for `event`.
  Status FireTriggers(const std::string& class_name, Oid oid,
                      TriggerEvent event, const Value& value)
      ODE_REQUIRES_SHARED(schema_mu_);

  /// All constraint/trigger definitions effective for a class
  /// (own + inherited).
  Result<std::vector<const ConstraintDef*>> EffectiveConstraints(
      const std::string& class_name) const;
  Result<std::vector<const TriggerDef*>> EffectiveTriggers(
      const std::string& class_name) const;

  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
  /// Set at open for on-disk databases, before the pool learns about
  /// it via `SetWal`; null for in-memory databases. Destroyed after the
  /// pool (member order), which never touches it post-destruction.
  std::unique_ptr<Wal> wal_;
  DatabaseOptions options_;
  /// Set once at open (before the database is shared) and never
  /// reseated, so the optional itself is read lock-free; the catalog
  /// *contents* follow schema_mu_ (exclusive for schema mutation,
  /// shared for reads) except the per-cluster id watermarks, which the
  /// catalog guards with its own id mutex.
  std::optional<Catalog> catalog_;

  /// Schema operations exclusive, object operations shared. Lock order
  /// (see docs/LOCKING.md for the full rank table): schema (10) ->
  /// heaps map (20) -> heap rwlock (30) -> catalog id (35) / trigger
  /// (36) / predicate (37) -> free list (50) -> frame latch (60) ->
  /// pool shard (70) -> pager (80).
  mutable SharedMutex schema_mu_{LockRank::kDbSchema};
  /// Serializes write transactions (rank kWalTxn, 15): held by a
  /// `WalTransactionScope` from the start of a logged operation until
  /// its commit record is appended — so uncommitted log records are
  /// always a strict suffix — and by checkpoint phase 2 to quiesce
  /// writers. Watchdog-visible: a wedged writer surfaces as a stall.
  Mutex wal_txn_mu_{LockRank::kWalTxn, "db.wal_txn_lock"};
  /// Guards the heaps_ map (per-heap state has its own rwlock).
  Mutex heaps_mu_{LockRank::kDbHeaps};
  Mutex trigger_mu_{LockRank::kDbTrigger};
  Mutex predicate_mu_{LockRank::kDbPredicate};
  std::map<ClusterId, HeapFile> heaps_ ODE_GUARDED_BY(heaps_mu_);
  std::vector<TriggerFiring> trigger_log_ ODE_GUARDED_BY(trigger_mu_);
  /// Parsed-predicate cache for constraints/trigger conditions.
  std::map<std::string, Predicate> predicate_cache_
      ODE_GUARDED_BY(predicate_mu_);
  std::atomic<uint64_t> next_session_id_{1};
  /// Bumped by every successful mutation; see mutation_epoch().
  std::atomic<uint64_t> mutation_epoch_{0};
  /// Shared with every Session so closing one stays safe even if the
  /// database object was destroyed first (UI code tears interactors
  /// down after their database).
  std::shared_ptr<std::atomic<int>> active_sessions_ =
      std::make_shared<std::atomic<int>>(0);
};

/// A handle for one concurrent client of a Database — the unit the
/// paper's per-window interactors hold. All methods forward to the
/// database's thread-safe object operations, so different sessions may
/// run on different worker threads simultaneously. Movable, not
/// copyable; closing (destroying) a session only drops the client
/// count, it never blocks.
class Session {
 public:
  Session() = default;
  Session(Session&& other) noexcept { *this = std::move(other); }
  Session& operator=(Session&& other) noexcept;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  ~Session();

  bool valid() const { return db_ != nullptr; }
  uint64_t id() const { return id_; }
  Database* database() { return db_; }

  /// The session's causal anchor: a trace context rooted at the
  /// zero-length `db.session` span recorded when the session opened
  /// (zero ids when tracing was off). Browse cascades adopt it so a
  /// Chrome trace groups every gesture under its session.
  obs::TraceContext trace_context() const { return trace_context_; }

  /// The session's inspector entry (`/sessions`): live current-op
  /// state plus cumulative resource totals. Null for a
  /// default-constructed (invalid) session.
  obs::SessionEntry* entry() { return entry_.get(); }

  Result<Oid> CreateObject(const std::string& class_name, Value value);
  Result<ObjectBuffer> GetObject(Oid oid);
  Result<ObjectBuffer> GetObjectVersion(Oid oid, uint32_t version);
  Result<std::vector<uint32_t>> ListVersions(Oid oid);
  Status UpdateObject(Oid oid, Value value);
  Status DeleteObject(Oid oid);

  Result<uint64_t> ClusterCount(const std::string& class_name);
  Result<Oid> FirstObject(const std::string& class_name);
  Result<Oid> LastObject(const std::string& class_name);
  Result<Oid> NextObject(Oid oid);
  Result<Oid> PrevObject(Oid oid);
  Result<ObjectBuffer> NextObjectBuffer(Oid oid);
  Result<ObjectBuffer> PrevObjectBuffer(Oid oid);
  Result<std::vector<ObjectBuffer>> NextObjectBuffers(Oid oid, size_t limit);
  Result<std::vector<ObjectBuffer>> PrevObjectBuffers(Oid oid, size_t limit);
  Result<std::vector<Oid>> ScanCluster(const std::string& class_name);
  Result<std::vector<Oid>> Select(const std::string& class_name,
                                  const Predicate& predicate);

 private:
  friend class Database;
  Session(Database* db, uint64_t id,
          std::shared_ptr<std::atomic<int>> counter)
      : db_(db), id_(id), counter_(std::move(counter)) {}

  Database* db_ = nullptr;
  uint64_t id_ = 0;
  /// Co-owned session counter; see Database::active_sessions_.
  std::shared_ptr<std::atomic<int>> counter_;
  obs::TraceContext trace_context_;
  /// Inspector entry; registered by OpenSession, unregistered on close.
  /// Shared with the registry so a `/sessions` scrape racing a close
  /// reads a still-valid entry.
  std::shared_ptr<obs::SessionEntry> entry_;
};

/// Stateful cursor over one cluster with an optional selection
/// predicate — the model behind the object-set window's `reset`,
/// `next`, and `previous` buttons.
class ObjectCursor {
 public:
  /// Creates a cursor over `class_name`; no object is current until
  /// the first `Next()` (or after `Reset()`).
  ObjectCursor(Database* db, std::string class_name)
      : db_(db), class_name_(std::move(class_name)) {}
  ObjectCursor(Database* db, std::string class_name, Predicate predicate)
      : db_(db),
        class_name_(std::move(class_name)),
        predicate_(std::move(predicate)),
        // Compiled once here; stepping then evaluates the slot
        // program instead of re-walking the tree per object.
        compiled_(exec::CompiledPredicate::Compile(predicate_)),
        filtered_(true) {}

  const std::string& class_name() const { return class_name_; }
  bool has_current() const { return current_.has_value(); }
  Result<Oid> Current() const;

  /// Forgets the position; the next `Next()` yields the first object.
  void Reset() { current_.reset(); }

  /// Advances to the next / previous matching object and returns its
  /// buffer; OutOfRange at either end (position is kept).
  Result<ObjectBuffer> Next();
  Result<ObjectBuffer> Prev();

  /// Positions on a specific object (it must match the predicate).
  Status Seek(Oid oid);

 private:
  Result<ObjectBuffer> Step(bool forward);
  /// Yields the object following `*pos` (or the cluster edge when
  /// `*pos` is empty), serving from the epoch-validated lookahead
  /// batch when possible.
  Result<ObjectBuffer> TakeNext(bool forward, const std::optional<Oid>& pos);
  Result<bool> Matches(const ObjectBuffer& buffer) const;

  Database* db_;
  std::string class_name_;
  Predicate predicate_ = Predicate::True();
  exec::CompiledPredicate compiled_;
  /// Per-cursor evaluation state (field-index hints); cursors are
  /// single-threaded, mutable so `Matches` stays const.
  mutable exec::CompiledPredicate::Scratch scratch_;
  bool filtered_ = false;
  std::optional<Oid> current_;

  /// Read-ahead of upcoming buffers, fetched one batch per lock
  /// round-trip. Valid only while the database's mutation epoch is
  /// unchanged; `lookahead_anchor_` is the position the entry at
  /// `lookahead_pos_` directly follows. Any mismatch just refetches,
  /// so observable behaviour is identical to stepping record-by-record.
  std::vector<ObjectBuffer> lookahead_;
  size_t lookahead_pos_ = 0;
  std::optional<Oid> lookahead_anchor_;
  bool lookahead_forward_ = true;
  uint64_t lookahead_epoch_ = 0;
};

}  // namespace ode::odb

#endif  // ODEVIEW_ODB_DATABASE_H_
