// Figure 2: the class-relationship (schema) window — the inheritance
// DAG drawn with a placement algorithm that minimizes crossovers.
//
// Measures end-to-end layout time and quality as the schema grows, and
// the zoom/re-render path of the schema window.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "dag/layout.h"
#include "odb/ddl_parser.h"
#include "odeview/dag_view.h"

namespace ode::bench {
namespace {

dag::Digraph GraphForClasses(int num_classes, uint64_t seed) {
  odb::Schema schema = ValueOrDie(
      odb::ParseSchema(odb::SyntheticSchemaDdl(num_classes, 2, seed)),
      "parse synthetic schema");
  dag::Digraph graph;
  for (const odb::ClassDef& def : schema.classes()) {
    (void)graph.EnsureNode(def.name);
  }
  for (const auto& [base, derived] : schema.InheritanceEdges()) {
    (void)graph.AddEdge(*graph.FindNode(base), *graph.FindNode(derived));
  }
  return graph;
}

void BM_SchemaDagLayout(benchmark::State& state) {
  int classes = static_cast<int>(state.range(0));
  dag::Digraph graph = GraphForClasses(classes, 1990);
  uint64_t crossings = 0;
  for (auto _ : state) {
    dag::DagLayout layout = ValueOrDie(dag::LayoutDag(graph), "layout");
    crossings = layout.crossings;
    benchmark::DoNotOptimize(layout);
  }
  state.counters["classes"] = classes;
  state.counters["edges"] = graph.edge_count();
  state.counters["crossings"] = static_cast<double>(crossings);
  state.SetItemsProcessed(state.iterations() * classes);
}
BENCHMARK(BM_SchemaDagLayout)
    ->Arg(10)
    ->Arg(50)
    ->Arg(200)
    ->Arg(1000)
    ->Arg(2000);

void BM_LabSchemaWindowOpen(benchmark::State& state) {
  // The whole Fig. 2 interaction: schema window with laid-out DAG.
  LabSession session = LabSession::Create();
  for (auto _ : state) {
    CheckOk(session.interactor->OnClassChanged("employee"),
            "reset windows");
    state.PauseTiming();
    // Destroy and reopen the schema window each round.
    CheckOk(session.app->CloseDatabase("lab"), "close");
    state.ResumeTiming();
    session.interactor =
        ValueOrDie(session.app->OpenDatabase("lab"), "open");
  }
}
BENCHMARK(BM_LabSchemaWindowOpen);

void BM_SchemaDagRender(benchmark::State& state) {
  int classes = static_cast<int>(state.range(0));
  view::DagView view("dag", GraphForClasses(classes, 7));
  view.set_rect(owl::Rect{0, 0, 100, 40});
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.RenderLines());
  }
  state.counters["classes"] = classes;
}
BENCHMARK(BM_SchemaDagRender)->Arg(10)->Arg(100)->Arg(500);

void BM_SchemaZoomCycle(benchmark::State& state) {
  view::DagView view("dag", GraphForClasses(300, 13));
  view.set_rect(owl::Rect{0, 0, 100, 40});
  for (auto _ : state) {
    CheckOk(view.ZoomOut(), "out");
    CheckOk(view.ZoomOut(), "out");
    CheckOk(view.ZoomIn(), "in");
    CheckOk(view.ZoomIn(), "in");
  }
}
BENCHMARK(BM_SchemaZoomCycle);

}  // namespace
}  // namespace ode::bench

ODE_BENCH_MAIN();
