/// Fuzzes WAL open/recovery over arbitrary log bytes — the boundary a
/// database crosses on every restart, where the input is whatever a
/// crash (or an attacker with the log file) left behind. Inspect() is
/// the pure parse; OpenAndRecover() additionally replays committed
/// page images into a pager, so forged page ids, lying length
/// prefixes, and torn tails all get exercised. Recovery must never
/// grow the pager beyond the documented bound (pages it had + one per
/// replayed image).

#include <cstdint>
#include <memory>
#include <string_view>

#include "odb/pager.h"
#include "odb/wal.h"

using ode::odb::MemPager;
using ode::odb::MemWalStore;
using ode::odb::Wal;
using ode::odb::WalOptions;
using ode::odb::WalRecoveryStats;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view bytes(reinterpret_cast<const char*>(data), size);

  (void)Wal::Inspect(bytes);

  auto store = std::make_unique<MemWalStore>();
  if (!store->Append(bytes).ok()) return 0;
  MemPager pager;
  const uint32_t pages_before = pager.page_count();
  WalRecoveryStats stats;
  auto wal = Wal::OpenAndRecover(std::move(store), &pager, WalOptions{},
                                 &stats);
  if (wal.ok() &&
      pager.page_count() > pages_before + stats.pages_redone) {
    __builtin_trap();  // recovery grew the file past its own redo count
  }
  return 0;
}
