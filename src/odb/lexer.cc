#include "odb/lexer.h"

#include <cctype>

namespace ode::odb {

namespace {
bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1;
  const size_t n = input_.size();
  while (i < n) {
    char c = input_[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && input_[i + 1] == '/') {
      while (i < n && input_[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && input_[i + 1] == '*') {
      size_t start_line = static_cast<size_t>(line);
      i += 2;
      while (i + 1 < n && !(input_[i] == '*' && input_[i + 1] == '/')) {
        if (input_[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n) {
        return Status::InvalidArgument(
            "line " + std::to_string(start_line) + ": unterminated comment");
      }
      i += 2;
      continue;
    }
    Token token;
    token.offset = i;
    token.line = line;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(input_[i])) ++i;
      token.kind = TokenKind::kIdent;
      token.text = std::string(input_.substr(start, i - start));
      token.length = i - start;
      out.push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input_[i + 1])))) {
      size_t start = i;
      bool is_real = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input_[i]))) {
        ++i;
      }
      if (i < n && input_[i] == '.') {
        is_real = true;
        ++i;
        while (i < n &&
               std::isdigit(static_cast<unsigned char>(input_[i]))) {
          ++i;
        }
      }
      if (i < n && (input_[i] == 'e' || input_[i] == 'E')) {
        is_real = true;
        ++i;
        if (i < n && (input_[i] == '+' || input_[i] == '-')) ++i;
        while (i < n &&
               std::isdigit(static_cast<unsigned char>(input_[i]))) {
          ++i;
        }
      }
      token.kind = is_real ? TokenKind::kReal : TokenKind::kInt;
      token.text = std::string(input_.substr(start, i - start));
      token.length = i - start;
      out.push_back(std::move(token));
      continue;
    }
    if (c == '"') {
      size_t start = i;
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        char d = input_[i];
        if (d == '\\' && i + 1 < n) {
          char e = input_[i + 1];
          if (e == 'n') {
            text.push_back('\n');
          } else if (e == 't') {
            text.push_back('\t');
          } else {
            text.push_back(e);
          }
          i += 2;
          continue;
        }
        if (d == '"') {
          closed = true;
          ++i;
          break;
        }
        if (d == '\n') break;
        text.push_back(d);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument("line " + std::to_string(line) +
                                       ": unterminated string literal");
      }
      token.kind = TokenKind::kString;
      token.text = std::move(text);
      token.length = i - start;
      out.push_back(std::move(token));
      continue;
    }
    // Multi-character operators first.
    static constexpr std::string_view kTwoCharOps[] = {
        "==", "!=", "<=", ">=", "&&", "||", "::", "->"};
    bool matched = false;
    if (i + 1 < n) {
      std::string_view two = input_.substr(i, 2);
      for (std::string_view op : kTwoCharOps) {
        if (two == op) {
          token.kind = TokenKind::kPunct;
          token.text = std::string(op);
          token.length = 2;
          out.push_back(std::move(token));
          i += 2;
          matched = true;
          break;
        }
      }
    }
    if (matched) continue;
    static constexpr std::string_view kOneCharOps = "{}()<>[]*;:,.=!+-/%&|";
    if (kOneCharOps.find(c) != std::string_view::npos) {
      token.kind = TokenKind::kPunct;
      token.text = std::string(1, c);
      token.length = 1;
      out.push_back(std::move(token));
      ++i;
      continue;
    }
    return Status::InvalidArgument("line " + std::to_string(line) +
                                   ": unexpected character '" +
                                   std::string(1, c) + "'");
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  end.line = line;
  out.push_back(std::move(end));
  return out;
}

const Token& TokenCursor::Peek(size_t ahead) const {
  size_t idx = pos_ + ahead;
  if (idx >= tokens_.size()) idx = tokens_.size() - 1;  // the kEnd token
  return tokens_[idx];
}

const Token& TokenCursor::Next() {
  const Token& t = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool TokenCursor::TryConsumePunct(std::string_view p) {
  if (Peek().IsPunct(p)) {
    Next();
    return true;
  }
  return false;
}

bool TokenCursor::TryConsumeIdent(std::string_view id) {
  if (Peek().IsIdent(id)) {
    Next();
    return true;
  }
  return false;
}

Status TokenCursor::ExpectPunct(std::string_view p) {
  if (!TryConsumePunct(p)) {
    return ErrorHere("expected '" + std::string(p) + "'");
  }
  return Status::OK();
}

Status TokenCursor::ExpectIdent(std::string_view id) {
  if (!TryConsumeIdent(id)) {
    return ErrorHere("expected '" + std::string(id) + "'");
  }
  return Status::OK();
}

Result<std::string> TokenCursor::ExpectAnyIdent() {
  if (!Peek().Is(TokenKind::kIdent)) {
    return ErrorHere("expected identifier");
  }
  return Next().text;
}

Status TokenCursor::ErrorHere(const std::string& msg) const {
  const Token& t = Peek();
  std::string got = t.kind == TokenKind::kEnd ? "end of input"
                                              : "'" + t.text + "'";
  return Status::InvalidArgument("line " + std::to_string(t.line) + ": " +
                                 msg + ", got " + got);
}

}  // namespace ode::odb
