file(REMOVE_RECURSE
  "CMakeFiles/ode_owl.dir/bitmap.cc.o"
  "CMakeFiles/ode_owl.dir/bitmap.cc.o.d"
  "CMakeFiles/ode_owl.dir/framebuffer.cc.o"
  "CMakeFiles/ode_owl.dir/framebuffer.cc.o.d"
  "CMakeFiles/ode_owl.dir/server.cc.o"
  "CMakeFiles/ode_owl.dir/server.cc.o.d"
  "CMakeFiles/ode_owl.dir/widget.cc.o"
  "CMakeFiles/ode_owl.dir/widget.cc.o.d"
  "CMakeFiles/ode_owl.dir/widgets.cc.o"
  "CMakeFiles/ode_owl.dir/widgets.cc.o.d"
  "CMakeFiles/ode_owl.dir/window.cc.o"
  "CMakeFiles/ode_owl.dir/window.cc.o.d"
  "libode_owl.a"
  "libode_owl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ode_owl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
