#ifndef ODEVIEW_ODEVIEW_BROWSE_NODE_H_
#define ODEVIEW_ODEVIEW_BROWSE_NODE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dynlink/linker.h"
#include "dynlink/repository.h"
#include "odb/database.h"
#include "odb/predicate.h"
#include "odeview/display_state.h"
#include "owl/server.h"

namespace ode::view {

/// Services a browse tree needs; owned by the DbInteractor.
struct BrowseContext {
  odb::Database* db = nullptr;
  /// Session this browse tree runs its object operations through; when
  /// null (tests constructing a context directly) nodes fall back to
  /// `db`. Lets several interactors browse one database from worker
  /// threads concurrently.
  odb::Session* session = nullptr;
  owl::Server* server = nullptr;
  dynlink::ModuleRepository* repository = nullptr;
  dynlink::DynamicLinker* linker = nullptr;
  DisplayStateRegistry* display_states = nullptr;
  std::string db_name;
  /// Debug mode: synthesized displays show private members too.
  bool privileged = false;
  /// Invoked by a panel's `project` button; the DbInteractor wires
  /// this to its projection dialog.
  std::function<void(const std::string& class_name)> on_project_request;
};

/// What a browse node ranges over.
enum class BrowseNodeKind : uint8_t {
  kClusterSet,    ///< the paper's "object set" window over a cluster
  kReference,     ///< an "object" window bound to a single reference
  kReferenceSet,  ///< an object-set window over a set-valued member
};

/// One node of the synchronized-browsing window tree (paper §4.4).
///
/// A node owns: its panel window (control panel + object panel), any
/// open display windows (one per open format), and its children (the
/// nodes opened by following embedded references from this object).
/// A sequencing operation at any node refreshes the whole subtree —
/// including windows that are currently closed.
///
/// A node also models the paper's per-class "object-interactor
/// process": a fault in class-designer display code marks this node
/// faulted (the simulated process death) without affecting the rest
/// of OdeView.
class BrowseNode {
 public:
  /// Creates a root node browsing the cluster of `class_name`,
  /// optionally filtered by a selection predicate (§5.2).
  static Result<std::unique_ptr<BrowseNode>> CreateClusterSet(
      BrowseContext* context, const std::string& class_name);

  ~BrowseNode();
  BrowseNode(const BrowseNode&) = delete;
  BrowseNode& operator=(const BrowseNode&) = delete;

  BrowseNodeKind kind() const { return kind_; }
  const std::string& class_name() const { return class_name_; }
  /// Member of the parent object this node follows (reference kinds).
  const std::string& member_name() const { return member_name_; }

  /// The node's panel window id.
  owl::WindowId panel_window() const { return panel_window_; }

  bool has_current() const { return current_.has_value(); }
  /// The object currently shown (a copy of the cached buffer).
  Result<odb::ObjectBuffer> Current() const;

  // --- Sequencing (the control panel: reset / next / previous) -------

  bool CanSequence() const { return kind_ != BrowseNodeKind::kReference; }
  /// Advances and synchronously refreshes the subtree.
  Status Next();
  Status Prev();
  /// Forgets the position (the next Next() shows the first object).
  Status Reset();

  // --- Display formats (the object panel's format buttons) -----------

  /// Formats offered: the class designer's registered modules, plus
  /// the synthesized "text" fallback when none exist.
  std::vector<std::string> AvailableFormats() const;
  /// Opens/closes the display of `format` (per-cluster display state).
  Status ToggleFormat(const std::string& format);
  bool IsFormatOpen(const std::string& format) const;
  /// Window id of an open display format (kNoWindow when absent).
  owl::WindowId DisplayWindow(const std::string& format) const;

  // --- Complex objects (reference / set buttons) ----------------------

  /// Reference members of this class (candidates for object windows).
  Result<std::vector<std::string>> ReferenceMembers() const;
  /// Set-of-reference members (candidates for object-set windows).
  Result<std::vector<std::string>> ReferenceSetMembers() const;

  /// Opens (or returns the existing) child node following `member`.
  Result<BrowseNode*> FollowReference(const std::string& member);
  Result<BrowseNode*> FollowReferenceSet(const std::string& member);

  BrowseNode* FindChild(std::string_view member);
  const std::vector<std::unique_ptr<BrowseNode>>& children() const {
    return children_;
  }
  BrowseNode* parent() const { return parent_; }

  /// Total nodes in this subtree (this node included).
  int SubtreeSize() const;
  /// Longest node chain from this node down to a leaf (>= 1).
  int SubtreeDepth() const;

  // --- Versions (O++ versioned classes) ---------------------------------

  /// For objects of a `versioned` class: opens (or refreshes) a window
  /// listing the retained versions of the current object with each
  /// version's attribute summary. NotFound for unversioned classes.
  Status OpenVersionsWindow();
  owl::WindowId versions_window() const { return versions_window_; }

  // --- Projection (§5.1) ----------------------------------------------

  /// The class's displaylist (declared or synthesized).
  Result<std::vector<std::string>> DisplayList() const;
  /// Projects onto `attrs` (subset of the displaylist) and refreshes.
  Status SetProjection(const std::vector<std::string>& attrs);
  /// Lifts projection (the ALL button).
  Status ClearProjection();
  const std::vector<bool>& projection_mask() const;

  // --- Selection (§5.2, cluster sets only) -----------------------------

  /// The class's selectlist (declared or synthesized).
  Result<std::vector<std::string>> SelectList() const;
  /// Installs a selection predicate; attribute paths must start with
  /// selectlist attributes. Resets the cursor.
  Status SetSelection(odb::Predicate predicate, std::string display_text);
  Status ClearSelection();
  bool has_selection() const { return has_selection_; }
  const std::string& selection_text() const { return selection_text_; }

  // --- Fault isolation (§4.6) ------------------------------------------

  bool faulted() const { return faulted_; }
  const std::string& fault_message() const { return fault_message_; }
  /// Restarts the simulated object-interactor after a fault.
  Status Restart();

  /// Re-resolves this node's object from its parent (reference kinds)
  /// and refreshes displays, then recurses into children. Called
  /// automatically by sequencing; public for tests and schema-change
  /// handling.
  Status RefreshSubtree();

 private:
  BrowseNode(BrowseContext* context, BrowseNodeKind kind,
             std::string class_name);

  /// Builds the panel window (buttons wired to this node).
  Status BuildPanel();
  /// Updates panel labels + open display windows for current_.
  Status RefreshSelf();
  /// Re-resolves current_ for reference kinds from the parent.
  Status ResolveFromParent();
  /// Refreshes this node and every child subtree under one
  /// `view.sync_cascade` span adopted from the session's trace
  /// context, bracketed by cascade journal records. Shared tail of
  /// Next/Prev/Reset.
  Status PropagateCascade();
  /// Renders one format into its window (creating it if needed).
  Status RenderFormat(const std::string& format);
  Status MarkFaulted(const std::string& format, const std::string& message);
  /// The display state entry of this node's cluster.
  ClusterDisplayState* state() const;
  /// Object fetches routed through the context's session when present.
  Result<odb::ObjectBuffer> FetchObject(odb::Oid oid) const;
  Result<odb::ObjectBuffer> FetchObjectVersion(odb::Oid oid,
                                               uint32_t version) const;
  Result<std::vector<uint32_t>> FetchVersionList(odb::Oid oid) const;
  /// Advances the cluster cursor / set index.
  Status Step(bool forward);
  /// Charges a reference-affinity edge (parent's current object →
  /// `dst`) to the access observatory when the recorder is on. The
  /// cascade that re-resolved this node touched both objects in one
  /// display refresh — exactly the co-location signal the clustering
  /// advisor wants.
  void RecordCascadeAffinity(odb::Oid dst) const;

  BrowseContext* context_;
  BrowseNodeKind kind_;
  std::string class_name_;
  std::string member_name_;  // reference kinds
  BrowseNode* parent_ = nullptr;

  // Cluster-set state.
  std::optional<odb::ObjectCursor> cursor_;
  bool has_selection_ = false;
  std::string selection_text_;

  // Reference-set state.
  std::vector<odb::Oid> set_targets_;
  int set_index_ = -1;  // -1 = before first

  std::optional<odb::ObjectBuffer> current_;

  owl::WindowId panel_window_ = owl::kNoWindow;
  owl::WindowId versions_window_ = owl::kNoWindow;
  std::map<std::string, owl::WindowId> display_windows_;  // format -> id

  bool faulted_ = false;
  std::string fault_message_;

  std::vector<std::unique_ptr<BrowseNode>> children_;
};

}  // namespace ode::view

#endif  // ODEVIEW_ODEVIEW_BROWSE_NODE_H_
