#include "common/telemetry_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string_view>

#include "common/access_log.h"
#include "common/journal.h"
#include "common/metrics.h"
#include "common/op_profile.h"
#include "common/timeseries.h"
#include "common/trace.h"

namespace ode::obs {

namespace {

struct Response {
  int status = 200;
  const char* content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Liveness plus WAL restart-recovery outcome: a probe can tell "came
/// up clean" from "came up after replaying N pages / truncating a torn
/// tail" without scraping the full metrics page. The counters are
/// cumulative for the process (0 everywhere = no recovery ran).
std::string RenderHealthJson() {
  Registry& registry = Registry::Global();
  std::string out = "{\"status\":\"ok\",\"wal\":{";
  out += "\"recovery_runs\":" +
         std::to_string(registry.counter("wal.recovery.runs")->value());
  out +=
      ",\"pages_redone\":" +
      std::to_string(registry.counter("wal.recovery.pages_redone")->value());
  out += ",\"committed_txns\":" +
         std::to_string(
             registry.counter("wal.recovery.committed_txns")->value());
  out += ",\"torn_bytes\":" +
         std::to_string(registry.counter("wal.recovery.torn_bytes")->value());
  out += "}}\n";
  return out;
}

Response HandleRequest(std::string_view path) {
  Response response;
  if (path == "/metrics") {
    response.body = Registry::Global().RenderPrometheus();
  } else if (path == "/metrics.json") {
    response.content_type = "application/json";
    response.body = Registry::Global().RenderJson();
  } else if (path == "/journal") {
    response.content_type = "application/x-ndjson";
    response.body = Journal::Global().ExportJsonLines();
  } else if (path == "/trace") {
    response.content_type = "application/json";
    response.body = Tracing::ExportChromeJson();
  } else if (path == "/sessions") {
    response.content_type = "application/json";
    response.body = SessionRegistry::Global().RenderJson();
  } else if (path == "/slow") {
    response.content_type = "application/json";
    response.body = SlowOpLog::Global().RenderJson();
  } else if (path == "/heatmap") {
    response.content_type = "application/json";
    response.body = AccessLog::Global().RenderHeatmapJson();
  } else if (path == "/timeseries") {
    response.content_type = "application/json";
    response.body = TimeSeriesStore::Global().RenderJson();
  } else if (path == "/healthz") {
    response.content_type = "application/json";
    response.body = RenderHealthJson();
  } else {
    response.status = 404;
    response.body = "not found\n";
  }
  return response;
}

Response BadRequest(const char* reason) {
  Response response;
  response.status = 400;
  response.body = std::string(reason) + "\n";
  return response;
}

void WriteResponse(int fd, const Response& response) {
  std::string out = "HTTP/1.0 ";
  switch (response.status) {
    case 200:
      out += "200 OK";
      break;
    case 400:
      out += "400 Bad Request";
      break;
    default:
      out += "404 Not Found";
      break;
  }
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: " + std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  size_t sent = 0;
  while (sent < out.size()) {
    ssize_t n = ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // client went away
    }
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

std::string_view ParseRequestPath(std::string_view request) {
  // Only the request line matters; anything past the first CRLF (or
  // bare LF from sloppy clients) is headers a scrape endpoint ignores.
  size_t line_end = request.find('\n');
  std::string_view line =
      line_end == std::string_view::npos ? request : request.substr(0, line_end);
  size_t method_end = line.find(' ');
  if (method_end == std::string_view::npos || method_end == 0) return "/";
  size_t path_end = line.find(' ', method_end + 1);
  if (path_end == std::string_view::npos || path_end == method_end + 1) {
    return "/";
  }
  return line.substr(method_end + 1, path_end - method_end - 1);
}

TelemetryServer::~TelemetryServer() { Stop(); }

Status TelemetryServer::Start(uint16_t port) {
  if (running()) {
    return Status::FailedPrecondition("telemetry server already running");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status failed =
        Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return failed;
  }
  if (::listen(fd, 16) != 0) {
    Status failed =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return failed;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    Status failed =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return failed;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void TelemetryServer::Stop() {
  if (!running()) return;
  stopping_.store(true, std::memory_order_release);
  // Wake the blocked accept(); closing alone is not guaranteed to.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  running_.store(false, std::memory_order_release);
}

void TelemetryServer::Serve() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down
    }
    // Read until the request line ("GET /path HTTP/1.x") is complete;
    // headers, if any, are irrelevant to a scrape and ignored. A line
    // that exceeds the cap is rejected outright — a scraper never
    // sends one, so it is either garbage or abuse.
    constexpr size_t kMaxRequestLine = 4096;
    char buffer[kMaxRequestLine];
    size_t filled = 0;
    bool line_complete = false;
    bool oversized = false;
    while (!line_complete && !oversized) {
      if (filled == sizeof(buffer)) {
        oversized = true;
        break;
      }
      ssize_t n =
          ::recv(client, buffer + filled, sizeof(buffer) - filled, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // client went away mid-line
      filled += static_cast<size_t>(n);
      line_complete =
          std::string_view(buffer, filled).find("\r\n") !=
          std::string_view::npos;
    }
    if (oversized) {
      WriteResponse(client, BadRequest("request line too long"));
    } else if (line_complete) {
      WriteResponse(client,
                    HandleRequest(ParseRequestPath(
                        std::string_view(buffer, filled))));
    }
    ::close(client);
  }
}

}  // namespace ode::obs
