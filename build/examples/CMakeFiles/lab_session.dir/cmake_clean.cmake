file(REMOVE_RECURSE
  "CMakeFiles/lab_session.dir/lab_session.cpp.o"
  "CMakeFiles/lab_session.dir/lab_session.cpp.o.d"
  "lab_session"
  "lab_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lab_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
