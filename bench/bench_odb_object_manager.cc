// Substrate benchmark: the Ode object manager (storage engine) that
// every OdeView interaction sits on — create/get/update throughput,
// cluster scans, and buffer-pool sensitivity.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "odb/value_codec.h"

namespace ode::bench {
namespace {

constexpr char kSchema[] = R"(
persistent class item {
public:
  string name;
  int rank;
  real score;
  set<item*> related;
};
)";

odb::Value Item(int i) {
  return odb::Value::Struct({
      {"name", odb::Value::String("item-" + std::to_string(i))},
      {"rank", odb::Value::Int(i)},
      {"score", odb::Value::Real(i * 0.5)},
      {"related", odb::Value::Set({})},
  });
}

std::unique_ptr<odb::Database> Db(size_t pool_pages = 256) {
  odb::DatabaseOptions options;
  options.buffer_pool_pages = pool_pages;
  auto db = ValueOrDie(odb::Database::CreateInMemory("bench", options),
                       "db");
  CheckOk(db->DefineSchema(kSchema), "schema");
  return db;
}

void BM_CreateObject(benchmark::State& state) {
  auto db = Db();
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ValueOrDie(db->CreateObject("item", Item(i++)), "create"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CreateObject);

void BM_GetObject(benchmark::State& state) {
  size_t pool_pages = static_cast<size_t>(state.range(0));
  auto db = Db(pool_pages);
  std::vector<odb::Oid> oids;
  for (int i = 0; i < 10000; ++i) {
    oids.push_back(ValueOrDie(db->CreateObject("item", Item(i)), "c"));
  }
  uint64_t x = 12345;
  for (auto _ : state) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    benchmark::DoNotOptimize(ValueOrDie(
        db->GetObject(oids[(x >> 33) % oids.size()]), "get"));
  }
  const auto& stats = db->buffer_pool()->stats();
  state.counters["pool_pages"] = static_cast<double>(pool_pages);
  state.counters["hit_rate"] =
      static_cast<double>(stats.hits) /
      static_cast<double>(stats.hits + stats.misses);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GetObject)->Arg(8)->Arg(64)->Arg(1024);

void BM_UpdateObject(benchmark::State& state) {
  auto db = Db();
  odb::Oid oid = ValueOrDie(db->CreateObject("item", Item(0)), "create");
  int i = 0;
  for (auto _ : state) {
    CheckOk(db->UpdateObject(oid, Item(++i)), "update");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdateObject);

void BM_ClusterScan(benchmark::State& state) {
  int objects = static_cast<int>(state.range(0));
  auto db = Db();
  for (int i = 0; i < objects; ++i) {
    (void)ValueOrDie(db->CreateObject("item", Item(i)), "create");
  }
  for (auto _ : state) {
    odb::ObjectCursor cursor(db.get(), "item");
    int n = 0;
    while (cursor.Next().ok()) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * objects);
  state.counters["objects"] = objects;
}
BENCHMARK(BM_ClusterScan)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ValueCodecRoundTrip(benchmark::State& state) {
  odb::Value value = Item(42);
  for (auto _ : state) {
    std::string bytes = odb::EncodeValueToString(value);
    benchmark::DoNotOptimize(
        ValueOrDie(odb::DecodeValue(bytes), "decode"));
  }
}
BENCHMARK(BM_ValueCodecRoundTrip);

void BM_LabDatabaseBuild(benchmark::State& state) {
  int employees = static_cast<int>(state.range(0));
  odb::LabDbConfig config;
  config.employees = employees;
  for (auto _ : state) {
    auto db = ValueOrDie(odb::Database::CreateInMemory("lab"), "db");
    CheckOk(odb::BuildLabDatabase(db.get(), config), "build");
    benchmark::DoNotOptimize(db);
  }
  state.counters["employees"] = employees;
}
BENCHMARK(BM_LabDatabaseBuild)->Arg(55)->Arg(500);

}  // namespace
}  // namespace ode::bench

ODE_BENCH_MAIN();
