#include <algorithm>
#include <gtest/gtest.h>

#include "dag/digraph.h"
#include "dag/layout.h"
#include "odb/ddl_parser.h"
#include "odb/labdb.h"

namespace ode::dag {
namespace {

// --- Digraph ------------------------------------------------------------

TEST(DigraphTest, AddAndFindNodes) {
  Digraph graph;
  NodeId a = *graph.AddNode("a");
  NodeId b = *graph.AddNode("b");
  EXPECT_EQ(graph.node_count(), 2);
  EXPECT_EQ(*graph.FindNode("a"), a);
  EXPECT_TRUE(graph.FindNode("z").status().IsNotFound());
  EXPECT_EQ(graph.AddNode("a").status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(graph.EnsureNode("a"), a);
  EXPECT_EQ(graph.EnsureNode("c"), 2);
  (void)b;
}

TEST(DigraphTest, EdgesAndAdjacency) {
  Digraph graph;
  NodeId a = *graph.AddNode("a");
  NodeId b = *graph.AddNode("b");
  ASSERT_TRUE(graph.AddEdge(a, b).ok());
  EXPECT_TRUE(graph.HasEdge(a, b));
  EXPECT_FALSE(graph.HasEdge(b, a));
  EXPECT_EQ(graph.OutNeighbors(a), (std::vector<NodeId>{b}));
  EXPECT_EQ(graph.InNeighbors(b), (std::vector<NodeId>{a}));
  EXPECT_TRUE(graph.AddEdge(a, b).code() == StatusCode::kAlreadyExists);
  EXPECT_FALSE(graph.AddEdge(a, a).ok());
  EXPECT_FALSE(graph.AddEdge(a, 99).ok());
}

TEST(DigraphTest, AcyclicityCheck) {
  Digraph dag = Digraph::FromEdges({{"a", "b"}, {"b", "c"}, {"a", "c"}});
  EXPECT_TRUE(dag.IsAcyclic());
  Digraph cyclic = Digraph::FromEdges({{"a", "b"}, {"b", "c"}, {"c", "a"}});
  EXPECT_FALSE(cyclic.IsAcyclic());
}

// --- Bilayer crossing counting -------------------------------------------

uint64_t BruteForceCrossings(
    const std::vector<std::pair<int, int>>& edges) {
  uint64_t n = 0;
  for (size_t i = 0; i < edges.size(); ++i) {
    for (size_t j = i + 1; j < edges.size(); ++j) {
      const auto& [u1, v1] = edges[i];
      const auto& [u2, v2] = edges[j];
      if ((u1 < u2 && v1 > v2) || (u1 > u2 && v1 < v2)) ++n;
    }
  }
  return n;
}

TEST(CrossingTest, SimpleCases) {
  EXPECT_EQ(CountBilayerCrossings({}), 0u);
  EXPECT_EQ(CountBilayerCrossings({{0, 0}, {1, 1}}), 0u);
  EXPECT_EQ(CountBilayerCrossings({{0, 1}, {1, 0}}), 1u);
  EXPECT_EQ(CountBilayerCrossings({{0, 2}, {1, 1}, {2, 0}}), 3u);
}

class CrossingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrossingProperty, MatchesBruteForce) {
  uint64_t state = GetParam();
  auto next = [&]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (int round = 0; round < 20; ++round) {
    std::vector<std::pair<int, int>> edges;
    size_t count = 1 + next() % 40;
    for (size_t i = 0; i < count; ++i) {
      edges.emplace_back(static_cast<int>(next() % 15),
                         static_cast<int>(next() % 15));
    }
    EXPECT_EQ(CountBilayerCrossings(edges), BruteForceCrossings(edges));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossingProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

// --- Layout invariants -------------------------------------------------------

Digraph LabLikeGraph() {
  return Digraph::FromEdges({{"employee", "manager"},
                             {"department", "manager"},
                             {"person", "employee"},
                             {"person", "consultant"},
                             {"employee", "intern"}});
}

TEST(LayoutTest, EmptyGraph) {
  Digraph graph;
  DagLayout layout = *LayoutDag(graph);
  EXPECT_TRUE(layout.nodes.empty());
  EXPECT_EQ(layout.crossings, 0u);
}

TEST(LayoutTest, SingleNode) {
  Digraph graph;
  (void)*graph.AddNode("only");
  DagLayout layout = *LayoutDag(graph);
  ASSERT_EQ(layout.nodes.size(), 1u);
  EXPECT_EQ(layout.nodes[0].layer, 0);
  EXPECT_GE(layout.width, 4);
}

void CheckInvariants(const Digraph& graph, const DagLayout& layout) {
  // 1. Every edge spans at least one layer downward.
  for (const auto& [from, to] : graph.edges()) {
    EXPECT_LT(layout.nodes[static_cast<size_t>(from)].layer,
              layout.nodes[static_cast<size_t>(to)].layer)
        << graph.label(from) << " -> " << graph.label(to);
  }
  // 2. No two nodes in a layer overlap horizontally.
  for (const auto& layer : layout.layers) {
    for (size_t i = 0; i + 1 < layer.size(); ++i) {
      const PlacedNode& left =
          layout.nodes[static_cast<size_t>(layer[i])];
      const PlacedNode& right =
          layout.nodes[static_cast<size_t>(layer[i + 1])];
      EXPECT_LE(left.x + left.width, right.x)
          << "overlap in layer of " << graph.label(layer[i]);
    }
  }
  // 3. Edge paths connect source to target positions.
  for (size_t e = 0; e < graph.edges().size(); ++e) {
    const auto& [from, to] = graph.edges()[e];
    const auto& path = layout.edge_paths[e];
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.front().y,
              layout.nodes[static_cast<size_t>(from)].y);
    EXPECT_EQ(path.back().y, layout.nodes[static_cast<size_t>(to)].y);
  }
  // 4. All coordinates are within the reported extent.
  for (const PlacedNode& node : layout.nodes) {
    EXPECT_GE(node.x, 0);
    EXPECT_LE(node.x + node.width, layout.width);
    EXPECT_GE(node.y, 0);
    EXPECT_LT(node.y, layout.height);
  }
}

TEST(LayoutTest, LabGraphInvariantsAndNoCrossings) {
  Digraph graph = LabLikeGraph();
  DagLayout layout = *LayoutDag(graph);
  CheckInvariants(graph, layout);
  // This small inheritance graph is planar in layers; the barycenter
  // heuristic must find a crossing-free drawing.
  EXPECT_EQ(layout.crossings, 0u);
}

TEST(LayoutTest, MultiInheritanceSharedLayer) {
  // manager must be strictly below both employee and department.
  Digraph graph = LabLikeGraph();
  DagLayout layout = *LayoutDag(graph);
  NodeId manager = *graph.FindNode("manager");
  NodeId employee = *graph.FindNode("employee");
  NodeId department = *graph.FindNode("department");
  EXPECT_GT(layout.nodes[static_cast<size_t>(manager)].layer,
            layout.nodes[static_cast<size_t>(employee)].layer);
  EXPECT_GT(layout.nodes[static_cast<size_t>(manager)].layer,
            layout.nodes[static_cast<size_t>(department)].layer);
}

TEST(LayoutTest, CyclicInputHandledByReversal) {
  Digraph graph = Digraph::FromEdges(
      {{"a", "b"}, {"b", "c"}, {"c", "a"}, {"c", "d"}});
  Result<DagLayout> layout = LayoutDag(graph);
  ASSERT_TRUE(layout.ok());
  // All nodes placed, every edge has a path.
  EXPECT_EQ(layout->nodes.size(), 4u);
  EXPECT_EQ(layout->edge_paths.size(), 4u);
  for (const auto& path : layout->edge_paths) {
    EXPECT_GE(path.size(), 2u);
  }
}

TEST(LayoutTest, LongEdgesGetBendPoints) {
  // a->d spans three layers: the path must bend at the dummy rows.
  Digraph graph = Digraph::FromEdges(
      {{"a", "b"}, {"b", "c"}, {"c", "d"}, {"a", "d"}});
  DagLayout layout = *LayoutDag(graph);
  const auto& long_path = layout.edge_paths[3];
  EXPECT_EQ(long_path.size(), 4u);  // src + 2 dummies + dst
}

TEST(LayoutTest, CoffmanGrahamRespectsWidthBound) {
  // A wide antichain: 20 roots, one sink.
  std::vector<std::pair<std::string, std::string>> edges;
  for (int i = 0; i < 20; ++i) {
    edges.push_back({"r" + std::to_string(i), "sink"});
  }
  Digraph graph = Digraph::FromEdges(edges);
  LayoutOptions options;
  options.layering = LayeringMethod::kCoffmanGraham;
  options.max_width = 5;
  DagLayout layout = *LayoutDag(graph, options);
  CheckInvariants(graph, layout);
  for (const auto& layer : layout.layers) {
    EXPECT_LE(layer.size(), 5u);
  }
}

Digraph RandomDag(uint64_t seed, int nodes, int edges_per_node) {
  uint64_t state = seed;
  auto next = [&]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  Digraph graph;
  for (int i = 0; i < nodes; ++i) {
    (void)graph.EnsureNode("n" + std::to_string(i));
  }
  for (int i = 1; i < nodes; ++i) {
    int count = 1 + static_cast<int>(next() % edges_per_node);
    for (int e = 0; e < count; ++e) {
      int from = static_cast<int>(next() % static_cast<uint64_t>(i));
      (void)graph.AddEdge(from, i);
    }
  }
  return graph;
}

class LayoutProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LayoutProperty, InvariantsHoldOnRandomDags) {
  Digraph graph = RandomDag(GetParam(), 60, 3);
  DagLayout layout = *LayoutDag(graph);
  CheckInvariants(graph, layout);
}

TEST_P(LayoutProperty, OrderingNeverWorseThanNone) {
  Digraph graph = RandomDag(GetParam() * 31 + 1, 50, 3);
  LayoutOptions none;
  none.ordering = OrderingMethod::kNone;
  LayoutOptions barycenter;
  barycenter.ordering = OrderingMethod::kBarycenter;
  LayoutOptions median;
  median.ordering = OrderingMethod::kMedian;
  uint64_t c_none = LayoutDag(graph, none)->crossings;
  uint64_t c_bary = LayoutDag(graph, barycenter)->crossings;
  uint64_t c_median = LayoutDag(graph, median)->crossings;
  // The sweeps keep the best ordering seen, so they can never lose to
  // the initial ordering.
  EXPECT_LE(c_bary, c_none);
  EXPECT_LE(c_median, c_none);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LayoutProperty,
                         ::testing::Values(3, 7, 19, 41, 97, 211));

TEST(LayoutTest, BarycenterSubstantiallyReducesCrossingsOnAverage) {
  uint64_t total_none = 0;
  uint64_t total_bary = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Digraph graph = RandomDag(seed * 1000 + 7, 80, 3);
    LayoutOptions none;
    none.ordering = OrderingMethod::kNone;
    total_none += LayoutDag(graph, none)->crossings;
    total_bary += LayoutDag(graph)->crossings;
  }
  EXPECT_LT(total_bary, (total_none * 4) / 5)
      << "barycenter should cut crossings noticeably on random DAGs "
      << "(got " << total_bary << " vs " << total_none << ")";
}

TEST(LayoutTest, FixedNodeWidthHonored) {
  Digraph graph = LabLikeGraph();
  LayoutOptions options;
  options.fixed_node_width = 3;
  DagLayout layout = *LayoutDag(graph, options);
  for (const PlacedNode& node : layout.nodes) {
    EXPECT_EQ(node.width, 3);
  }
}

TEST(LayoutTest, LabSchemaFromDdlLaysOut) {
  odb::Schema schema = *odb::ParseSchema(odb::LabSchemaDdl());
  Digraph graph;
  for (const odb::ClassDef& def : schema.classes()) {
    (void)graph.EnsureNode(def.name);
  }
  for (const auto& [base, derived] : schema.InheritanceEdges()) {
    (void)graph.AddEdge(*graph.FindNode(base), *graph.FindNode(derived));
  }
  DagLayout layout = *LayoutDag(graph);
  CheckInvariants(graph, layout);
  EXPECT_EQ(layout.crossings, 0u);
}

}  // namespace
}  // namespace ode::dag
