// schema_explorer: schema browsing at scale — generate a synthetic
// schema, lay out its inheritance DAG with the three ordering
// heuristics, zoom through detail levels, and walk class metadata.

#include <cstdio>
#include <cstdlib>

#include "dag/layout.h"
#include "odb/database.h"
#include "odb/ddl_parser.h"
#include "odb/labdb.h"
#include "odeview/app.h"
#include "odeview/dag_view.h"

namespace {

#define CHECK_OK(expr)                                              \
  do {                                                              \
    ::ode::Status _st = (expr);                                     \
    if (!_st.ok()) {                                                \
      std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__, \
                   _st.ToString().c_str());                         \
      return 1;                                                     \
    }                                                               \
  } while (0)

#define CHECK_ASSIGN(lhs, expr)                                     \
  auto lhs##_result = (expr);                                       \
  if (!lhs##_result.ok()) {                                         \
    std::fprintf(stderr, "FATAL %s:%d: %s\n", __FILE__, __LINE__,   \
                 lhs##_result.status().ToString().c_str());         \
    return 1;                                                       \
  }                                                                 \
  auto& lhs = *lhs##_result

}  // namespace

int main(int argc, char** argv) {
  using namespace ode;
  int classes = argc > 1 ? std::atoi(argv[1]) : 24;
  uint64_t seed = argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 17;

  // 1. Generate and load a synthetic schema.
  std::string ddl = odb::SyntheticSchemaDdl(classes, 2, seed);
  CHECK_ASSIGN(db, odb::Database::CreateInMemory("synthetic"));
  CHECK_OK(db->DefineSchema(ddl));
  std::printf("schema: %zu classes, %zu inheritance edges\n\n",
              db->schema().size(), db->schema().InheritanceEdges().size());

  // 2. Compare ordering heuristics on this schema's DAG.
  dag::Digraph graph;
  for (const odb::ClassDef& def : db->schema().classes()) {
    (void)graph.EnsureNode(def.name);
  }
  for (const auto& [base, derived] : db->schema().InheritanceEdges()) {
    (void)graph.AddEdge(*graph.FindNode(base), *graph.FindNode(derived));
  }
  for (auto [name, method] :
       {std::pair{"none      ", dag::OrderingMethod::kNone},
        std::pair{"barycenter", dag::OrderingMethod::kBarycenter},
        std::pair{"median    ", dag::OrderingMethod::kMedian}}) {
    dag::LayoutOptions options;
    options.ordering = method;
    CHECK_ASSIGN(layout, dag::LayoutDag(graph, options));
    std::printf("ordering %s -> %4llu crossings, %2zu layers, %3dx%d\n",
                name,
                static_cast<unsigned long long>(layout.crossings),
                layout.layers.size(), layout.width, layout.height);
  }

  // 3. Open the schema in OdeView and render the DAG at each zoom.
  view::OdeViewApp app(180, 64);
  CHECK_OK(app.AddDatabaseBorrowed(db.get()));
  CHECK_OK(app.OpenInitialWindow());
  CHECK_ASSIGN(interactor, app.OpenDatabase("synthetic"));
  view::DagView* view = interactor->dag_view();
  for (int zoom = 0; zoom <= 2; ++zoom) {
    std::printf("\n--- schema DAG at zoom level %d (%s) ---\n", zoom,
                zoom == 0 ? "full names"
                          : (zoom == 1 ? "abbreviated" : "structure only"));
    int printed = 0;
    for (const std::string& line : view->RenderLines()) {
      std::printf("%s\n", line.c_str());
      if (++printed >= 24) {
        std::printf("... (%d more rows)\n",
                    view->layout().height - printed);
        break;
      }
    }
    CHECK_OK(interactor->ZoomOut());
  }

  // 4. Walk class metadata the way the info windows show it.
  std::printf("\n--- class metadata (first 8 classes) ---\n");
  int shown = 0;
  for (const odb::ClassDef& def : db->schema().classes()) {
    if (shown++ >= 8) break;
    CHECK_ASSIGN(supers, db->schema().DirectSuperclasses(def.name));
    CHECK_ASSIGN(subs, db->schema().DirectSubclasses(def.name));
    CHECK_ASSIGN(count, db->ClusterCount(def.name));
    std::printf("%-8s supers:%2zu subs:%2zu objects:%llu\n",
                def.name.c_str(), supers.size(), subs.size(),
                static_cast<unsigned long long>(count));
  }
  return 0;
}
