file(REMOVE_RECURSE
  "CMakeFiles/odb_tour.dir/odb_tour.cpp.o"
  "CMakeFiles/odb_tour.dir/odb_tour.cpp.o.d"
  "odb_tour"
  "odb_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odb_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
