#ifndef ODEVIEW_COMMON_LOCK_RANK_H_
#define ODEVIEW_COMMON_LOCK_RANK_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ode {

/// The process-wide lock partial order. A thread may only acquire a
/// mutex whose rank is strictly greater than every rank it already
/// holds (equal ranks are allowed only where the table says so — see
/// docs/LOCKING.md for the full table with owners and rationale).
/// Numeric gaps are deliberate so future locks slot in without
/// renumbering.
///
/// The ordering restates the engine's documented acquisition order:
/// database schema first, storage structures next, the buffer pool's
/// frame-latch -> shard -> pager chain after that, and the
/// observability locks (which every layer may enter last) at the top.
enum class LockRank : uint16_t {
  kDbSchema = 10,        ///< Database::schema_mu_ (DDL vs DML)
  kWalTxn = 15,          ///< Database::wal_txn_mu_ (write-txn serialization)
  kDbHeaps = 20,         ///< Database::heaps_mu_ (heap cache map)
  kHeapFile = 30,        ///< HeapFile::mu_ (directory + chain)
  kCatalogId = 35,       ///< Catalog::id_mu_ (next-id watermarks)
  kDbTrigger = 36,       ///< Database::trigger_mu_ (trigger log)
  kDbPredicate = 37,     ///< Database::predicate_mu_ (predicate cache)
  kFreeList = 50,        ///< FreeList::mu_ (free page chain)
  kPoolFrameLatch = 60,  ///< internal::Frame::latch (page content)
  kClusterPrefetchSource = 65,  ///< BufferPool::prefetch_source_mu_
  kPoolShard = 70,       ///< BufferPool::Shard::mu (frame table/LRU)
  kWal = 75,             ///< Wal::mu_ (log append / group-commit state)
  kWalStore = 78,        ///< MemWalStore::mu_ (in-memory log bytes)
  kPager = 80,           ///< MemPager::mu_ / FilePager::extend_mu_
  kBackgroundWorker = 90,   ///< BackgroundWorker::mu_ (task queue)
  kWatchdogScan = 100,      ///< Watchdog::scan_mu_ (flag sets)
  kWatchdogWake = 102,      ///< Watchdog::wake_mu_ (scanner wakeup)
  kWatchdogRefresh = 110,   ///< crash-snapshot writer serialization
  kTimeSeries = 182,        ///< obs::TimeSeriesStore::mu_ (history rings)
  kAccessCapture = 185,     ///< obs::AccessLog capture-file writer
  kSessionRegistry = 190,   ///< obs::SessionRegistry::mu_ (open sessions)
  kSlowOpLog = 195,         ///< obs::SlowOpLog::mu_ (slow-op ring)
  kMetricsRegistry = 200,   ///< obs::Registry::mu_ (instrument maps)
  kTraceDirectory = 210,    ///< trace BufferDirectory::mu
  kTraceBuffer = 220,       ///< trace ThreadBuffer::mu (span rings)
  kJournalIntern = 230,     ///< journal label intern table
};

/// Static metadata for one rank (docs/LOCKING.md is the prose copy;
/// tests/lock_rank_test.cc checks the two stay in sync).
struct LockRankInfo {
  LockRank rank;
  const char* name;  ///< canonical instance name ("pool.shard_lock", ...)
  /// Several instances of this rank may be held at once by one thread
  /// (e.g. frame latches in single-threaded multi-handle callers).
  bool allow_same_rank = false;
  /// Exclusive acquisitions claim a watchdog HoldRegistry slot, so a
  /// wedged holder surfaces as a stalled hold in crash dumps.
  bool watchdog_visible = false;
};

/// The full rank table, ascending rank order.
const std::vector<LockRankInfo>& LockRankTable();

/// Metadata lookups (nullptr / false for unknown ranks).
const LockRankInfo* FindLockRankInfo(LockRank rank);
const char* LockRankName(LockRank rank);

/// Per-thread lock-ordering validator. `ode::Mutex` / `ode::SharedMutex`
/// report every acquisition and release here; the validator keeps a
/// thread-local stack of held locks and flags
///   * out-of-order acquisition (new rank <= a held rank, unless the
///     rank allows same-rank stacking), and
///   * recursive acquisition of the same instance.
///
/// A violation always bumps `lockrank.violations.total` and appends a
/// `lockrank_violation` journal record (the flight recorder catches
/// near-deadlocks in production); in `kAbort` mode it additionally
/// dumps the held-lock stack plus the journal tail to stderr and
/// aborts. Debug builds default to `kAbort`, release builds (NDEBUG)
/// to `kCount`.
class LockRankValidator {
 public:
  enum class Mode : int {
    kOff = 0,    ///< no tracking at all
    kCount = 1,  ///< count + journal violations, keep running
    kAbort = 2,  ///< count + journal, then dump held locks and abort
  };

  static Mode mode();
  /// Switch modes only at a quiescent point (no tracked locks held
  /// anywhere): the held stacks of running threads are not rewritten.
  static void SetMode(Mode mode);

  /// Called by the wrappers before a blocking acquisition attempt.
  /// `instance` is the mutex address (recursion detection);
  /// `exclusive` is false for shared (reader) mode.
  static void OnAcquire(LockRank rank, const char* name,
                        const void* instance, bool exclusive = true);
  /// Called after a successful try-acquire. Ordering is not checked —
  /// a non-blocking attempt cannot participate in a deadlock cycle —
  /// but the hold is recorded and recursion is still flagged.
  static void OnTryAcquire(LockRank rank, const char* name,
                           const void* instance, bool exclusive = true);
  /// Called on release. Unmatched releases are ignored (PageHandle
  /// latches may legally be released by RAII cleanup paths after the
  /// stack already unwound).
  static void OnRelease(const void* instance);

  /// Total violations flagged by this process (all threads).
  static uint64_t violations();

  /// Locks currently held by the calling thread (test hook).
  static size_t HeldCount();
  /// Human-readable held-lock stack of the calling thread.
  static std::string HeldReport();
};

}  // namespace ode

#endif  // ODEVIEW_COMMON_LOCK_RANK_H_
