file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_set_navigation.dir/bench_fig08_set_navigation.cc.o"
  "CMakeFiles/bench_fig08_set_navigation.dir/bench_fig08_set_navigation.cc.o.d"
  "bench_fig08_set_navigation"
  "bench_fig08_set_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_set_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
