#include "odb/object_record.h"

#include <algorithm>

#include "common/coding.h"
#include "odb/value_codec.h"

namespace ode::odb {

std::string EncodeObjectRecord(const ObjectRecord& record) {
  std::string out;
  PutVarint32(&out, record.version);
  PutVarint64(&out, record.history.size());
  for (const auto& [ver, val] : record.history) {
    PutVarint32(&out, ver);
    PutLengthPrefixed(&out, EncodeValueToString(val));
  }
  EncodeValue(record.value, &out);
  return out;
}

Result<ObjectRecord> DecodeObjectRecord(std::string_view bytes) {
  Decoder decoder(bytes);
  ObjectRecord record;
  ODE_RETURN_IF_ERROR(decoder.GetVarint32(&record.version));
  uint64_t n = 0;
  ODE_RETURN_IF_ERROR(decoder.GetVarint64(&n));
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t ver = 0;
    std::string_view val_bytes;
    ODE_RETURN_IF_ERROR(decoder.GetVarint32(&ver));
    ODE_RETURN_IF_ERROR(decoder.GetLengthPrefixed(&val_bytes));
    ODE_ASSIGN_OR_RETURN(Value val, DecodeValue(val_bytes));
    record.history.emplace_back(ver, std::move(val));
  }
  ODE_ASSIGN_OR_RETURN(record.value, DecodeValue(&decoder));
  if (!decoder.empty()) {
    return Status::Corruption("trailing bytes after object record");
  }
  return record;
}

ProjectionMask ProjectionMask::Of(std::vector<std::string> names) {
  ProjectionMask mask;
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  mask.names_ = std::move(names);
  return mask;
}

ProjectionMask ProjectionMask::FromPaths(
    const std::vector<std::string>& paths) {
  ProjectionMask mask;
  for (const std::string& p : paths) mask.AddPath(p);
  return mask;
}

void ProjectionMask::AddPath(std::string_view path) {
  std::string_view head = path.substr(0, path.find('.'));
  auto it = std::lower_bound(names_.begin(), names_.end(), head);
  if (it != names_.end() && *it == head) return;
  names_.insert(it, std::string(head));
}

bool ProjectionMask::contains(std::string_view name) const {
  return std::binary_search(names_.begin(), names_.end(), name);
}

Result<ProjectedRecord> DecodeObjectRecordProjected(
    std::string_view bytes, const ProjectionMask* mask) {
  Decoder decoder(bytes);
  ProjectedRecord out;
  ODE_RETURN_IF_ERROR(decoder.GetVarint32(&out.version));
  uint64_t history = 0;
  ODE_RETURN_IF_ERROR(decoder.GetVarint64(&history));
  for (uint64_t i = 0; i < history; ++i) {
    // History entries are length-prefixed, so skipping one costs a
    // varint read — never a value decode.
    uint32_t ver = 0;
    std::string_view val_bytes;
    ODE_RETURN_IF_ERROR(decoder.GetVarint32(&ver));
    ODE_RETURN_IF_ERROR(decoder.GetLengthPrefixed(&val_bytes));
  }
  std::string_view current = decoder.remaining();
  std::string_view tag_bytes;
  ODE_RETURN_IF_ERROR(decoder.GetRaw(1, &tag_bytes));
  auto kind = static_cast<ValueKind>(static_cast<uint8_t>(tag_bytes[0]));
  if (mask == nullptr || kind != ValueKind::kStruct) {
    Decoder full(current);
    ODE_ASSIGN_OR_RETURN(out.value, DecodeValue(&full));
    if (!full.empty()) {
      return Status::Corruption("trailing bytes after object record");
    }
    return out;
  }
  uint64_t field_count = 0;
  ODE_RETURN_IF_ERROR(decoder.GetVarint64(&field_count));
  std::vector<Value::Field> fields;
  fields.reserve(std::min<uint64_t>(field_count, mask->size()));
  for (uint64_t i = 0; i < field_count; ++i) {
    std::string_view name;
    ODE_RETURN_IF_ERROR(decoder.GetLengthPrefixed(&name));
    if (mask->contains(name)) {
      ODE_ASSIGN_OR_RETURN(Value v, DecodeValue(&decoder));
      fields.push_back({std::string(name), std::move(v)});
    } else {
      ODE_RETURN_IF_ERROR(SkipValue(&decoder));
      ++out.skipped_fields;
    }
  }
  if (!decoder.empty()) {
    return Status::Corruption("trailing bytes after object record");
  }
  out.value = Value::Struct(std::move(fields));
  return out;
}

}  // namespace ode::odb
