file(REMOVE_RECURSE
  "libode_dag.a"
)
