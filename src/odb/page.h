#ifndef ODEVIEW_ODB_PAGE_H_
#define ODEVIEW_ODB_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>

namespace ode::odb {

/// Size of every database page in bytes.
inline constexpr size_t kPageSize = 4096;

/// Page number within a database file. Page 0 is the superblock.
using PageId = uint32_t;

/// Sentinel meaning "no page" (end of a chain, empty free list...).
inline constexpr PageId kNoPage = 0xFFFFFFFFu;

/// A raw database page. Interpretation (superblock, slotted data page,
/// blob page) is up to the layer using it.
struct Page {
  std::array<char, kPageSize> data;

  void Zero() { data.fill(0); }
  char* bytes() { return data.data(); }
  const char* bytes() const { return data.data(); }
};

}  // namespace ode::odb

#endif  // ODEVIEW_ODB_PAGE_H_
