#ifndef ODEVIEW_ODB_BUFFER_POOL_H_
#define ODEVIEW_ODB_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/metrics.h"
#include "common/thread_annotations.h"
#include "common/result.h"
#include "common/status.h"
#include "common/threading.h"
#include "odb/page.h"
#include "odb/pager.h"

namespace ode::odb {

class BufferPool;
class Wal;

/// How a caller intends to use a fetched page. The pool takes the
/// frame's reader/writer latch accordingly: readers share, writers
/// exclude. `kRead` is the default so legacy single-threaded call
/// sites keep working; code that mutates a page from a worker thread
/// must fetch with `kWrite`.
enum class PageIntent : uint8_t { kRead, kWrite };

/// What the pool's read-ahead does when a consumer signals upcoming
/// sequential work (`ReadAhead`) or faults a page (`Fetch` miss):
///  * kOff — no speculative I/O at all.
///  * kSequential — scans and batch reads warm the next chain page;
///    point lookups (single-record reads) schedule nothing. This is
///    the default and matches the seed behaviour minus the point-
///    lookup leak (see DESIGN.md §11).
///  * kAffinity — sequential read-ahead as above, plus every fetch
///    miss schedules the faulted page's top affinity neighbors from
///    the installed `PrefetchSource` (charged to `cluster.prefetch.*`).
enum class ReadAheadPolicy : uint8_t { kOff, kSequential, kAffinity };

/// Supplies affinity neighbors for `ReadAheadPolicy::kAffinity`.
/// Implementations must be immutable after construction (the pool
/// queries them from arbitrary threads without a lock beyond the
/// shared_ptr copy) and must not call back into the pool.
class PrefetchSource {
 public:
  virtual ~PrefetchSource() = default;
  /// Writes up to `max` pages most strongly affine to `page` into
  /// `out`, strongest first; returns how many were written.
  virtual size_t TopNeighbors(PageId page, PageId* out,
                              size_t max) const = 0;
};

namespace internal {

/// One buffer frame. Pin count and dirty flag are atomic so a
/// `PageHandle` can be released without taking the shard lock; the
/// latch serializes page-content access across threads. `id` and
/// `in_use` are protected by the owning shard's mutex (they are stable
/// while the frame is pinned, so a pin holder may read them freely).
struct Frame {
  Page page;
  PageId id = kNoPage;
  std::atomic<int> pin_count{0};
  std::atomic<bool> dirty{false};
  bool in_use = false;
  /// WAL-before-data gate: the log must be durable up to this LSN
  /// before the frame may be written back (see DESIGN.md §10).
  /// Set at capture time and raised to the commit LSN when the
  /// transaction seals.
  std::atomic<uint64_t> page_lsn{0};
  /// No-steal gate: true while the frame's latest image belongs to an
  /// unsealed transaction. Such frames are never flushed or evicted —
  /// losers must not reach the data file.
  std::atomic<bool> wal_uncommitted{false};
  /// Rank kPoolFrameLatch (60): below the shard mutex (70) — a latch
  /// may be held while entering another page's shard on a multi-handle
  /// path, but never the other way around (Fetch/NewPage release the
  /// shard lock before latching). Exclusive holds are watchdog-visible
  /// and lock-rank-tracked by the wrapper itself.
  SharedMutex latch{LockRank::kPoolFrameLatch};
};

}  // namespace internal

/// RAII pin on a buffered page. While a handle is alive the frame
/// cannot be evicted and the frame latch is held in the handle's
/// intent mode. Call `MarkDirty()` after mutating the page.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle();

  bool valid() const { return frame_ != nullptr; }
  PageId id() const { return id_; }
  Page* page() { return page_; }
  const Page* page() const { return page_; }
  /// Records that the page content changed and must be written back.
  void MarkDirty() { dirty_ = true; }
  /// Drops the pin early (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, internal::Frame* frame, PageId id, Page* page,
             PageIntent intent)
      : pool_(pool), frame_(frame), id_(id), page_(page), intent_(intent) {}

  BufferPool* pool_ = nullptr;
  internal::Frame* frame_ = nullptr;
  PageId id_ = kNoPage;
  Page* page_ = nullptr;
  PageIntent intent_ = PageIntent::kRead;
  bool dirty_ = false;
};

/// Fixed-capacity page cache with LRU eviction and pin counting,
/// lock-sharded for concurrent access.
///
/// The pool is split into N sub-pools ("shards") keyed by page id;
/// each shard has its own mutex, frame set, LRU list, and statistics
/// counters, so threads touching different shards never contend.
/// Within one shard the seed's semantics are preserved exactly: LRU
/// eviction order, pinned frames never evicted, dirty frames written
/// back on eviction and on `FlushAll()`. Capacity is partitioned
/// across shards (a shard whose frames are all pinned fails fetches
/// with FailedPrecondition even if other shards have room).
///
/// All storage-layer reads and writes go through the pool; a built-in
/// prefetcher (`Prefetch`) warms pages on a background thread.
class BufferPool {
 public:
  /// Per-pool statistics. The underlying counters live in the global
  /// `obs::Registry` (as owned instances under `pool.*` metric names),
  /// so process-wide exports aggregate every live pool; this struct is
  /// the per-instance adapter view read back from those instruments.
  struct Stats {
    uint64_t lookups = 0;  ///< Fetch calls (hits + misses)
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;
    uint64_t prefetches = 0;  ///< pages scheduled on the prefetch thread
    uint64_t cluster_prefetches = 0;  ///< of those, affinity-triggered
  };

  /// `capacity` is the total number of frames; must be >= 1.
  /// `shards` = 0 picks automatically: one shard per 32 frames, at
  /// most 8 — so small pools (tests, benchmarks) stay single-sharded
  /// and behave exactly like the unsharded pool. The shard count is
  /// clamped to `capacity` so every shard owns at least one frame.
  explicit BufferPool(Pager* pager, size_t capacity, size_t shards = 0);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from the pager on a miss, and acquires
  /// the frame latch in `intent` mode (blocking until available).
  ///
  /// A single thread may hold several handles at once, but threads that
  /// do so while other threads contend for the same pages can deadlock
  /// on frame latches (frame latches share one rank; there is no order
  /// *within* it). Layers above the pool therefore hold at most one
  /// handle at a time; multi-handle use is reserved for single-threaded
  /// callers such as fuzz harnesses.
  Result<PageHandle> Fetch(PageId id, PageIntent intent = PageIntent::kRead);

  /// Allocates a fresh zeroed page, pins it (write intent), and
  /// reports its id.
  Result<PageHandle> NewPage();

  /// Writes back every dirty frame (does not evict).
  Status FlushAll();

  /// Writes back dirty frames and syncs the pager.
  Status Sync();

  /// Schedules `id` to be read into the pool by the background
  /// prefetch thread. Cheap and non-blocking; already-cached pages and
  /// backpressure overflows are skipped silently. Prefetch fetches
  /// never cascade (they do not trigger affinity read-ahead).
  void Prefetch(PageId id);

  /// Policy-gated read-ahead hint from a storage consumer about the
  /// page a sequential walk needs next. `point_lookup` marks a
  /// single-record read (browse-cascade reference resolution); point
  /// lookups schedule no sequential read-ahead under any policy —
  /// affinity coverage for them comes from the fetch-miss trigger.
  void ReadAhead(PageId next_sequential, bool point_lookup);

  /// The current read-ahead policy (default kSequential).
  ReadAheadPolicy read_ahead_policy() const {
    return static_cast<ReadAheadPolicy>(
        read_ahead_policy_.load(std::memory_order_relaxed));
  }
  void SetReadAheadPolicy(ReadAheadPolicy policy) {
    read_ahead_policy_.store(static_cast<uint8_t>(policy),
                             std::memory_order_relaxed);
  }

  /// Installs (or clears, with nullptr) the affinity neighbor map that
  /// `kAffinity` consults on fetch misses. Thread-safe; the previous
  /// source stays alive until in-flight queries drop their reference.
  void SetPrefetchSource(std::shared_ptr<const PrefetchSource> source);

  /// Blocks until all scheduled prefetches finished (test hook).
  void WaitForPrefetches();

  /// Whether `id` currently resides in the pool (test hook).
  bool Cached(PageId id) const;

  /// Aggregates the per-shard atomic counters.
  Stats stats() const;

  size_t capacity() const { return capacity_; }
  size_t shard_count() const { return shard_count_; }
  Pager* pager() { return pager_; }

  /// Attaches the write-ahead log. With a WAL attached the pool (a)
  /// captures dirtied pages released under a `WalTransactionScope`
  /// into the log, (b) refuses to flush or evict frames of unsealed
  /// transactions, and (c) makes the log durable up to a frame's
  /// `page_lsn` before any writeback. Call before concurrent use.
  void SetWal(Wal* wal) { wal_ = wal; }
  Wal* wal() { return wal_; }

 private:
  friend class PageHandle;

  /// Fetch body. `allow_read_ahead` is false on the prefetcher's own
  /// fetches so speculative reads never fan out into further
  /// speculative reads.
  Result<PageHandle> FetchInternal(PageId id, PageIntent intent,
                                   bool allow_read_ahead);

  /// kAffinity fetch-miss trigger: schedules `page`'s top affinity
  /// neighbors from the installed source. Called with no locks held.
  void AffinityReadAhead(PageId page);

  /// One lock-sharded sub-pool. The statistics counters are
  /// registry-owned instruments (one instance per shard, so counting
  /// stays contention-free) aggregated under the `pool.*` names.
  struct Shard {
    mutable Mutex mu{LockRank::kPoolShard};
    /// The frame array itself is immutable after construction; frame
    /// *assignment* (`id`, `in_use`) changes only under `mu`, while
    /// page content is covered by each frame's latch.
    std::unique_ptr<internal::Frame[]> frames;
    size_t frame_count = 0;
    std::unordered_map<PageId, size_t> page_to_frame ODE_GUARDED_BY(mu);
    std::list<size_t> lru ODE_GUARDED_BY(mu);  // front = most recent
    std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos
        ODE_GUARDED_BY(mu);
    std::shared_ptr<obs::Counter> lookups;
    std::shared_ptr<obs::Counter> hits;
    std::shared_ptr<obs::Counter> misses;
    std::shared_ptr<obs::Counter> evictions;
    std::shared_ptr<obs::Counter> writebacks;
  };

  Shard& ShardOf(PageId id) { return shards_[id % shard_count_]; }
  const Shard& ShardOf(PageId id) const { return shards_[id % shard_count_]; }

  /// Unlatches and unpins; called by PageHandle without the shard lock.
  /// With a WAL attached, a dirty write-intent release is first
  /// captured into the current transaction scope (while the exclusive
  /// latch is still held, so the logged image is the exact bytes the
  /// writer produced). Not analyzed: latch ownership lives in the
  /// PageHandle (a capability transfer across function boundaries
  /// Clang's analysis cannot model); see docs/LOCKING.md
  /// §escape-hatches.
  void ReleaseHandle(internal::Frame* frame, bool dirty,
                     PageIntent intent) ODE_NO_THREAD_SAFETY_ANALYSIS;

  /// Returns a frame index to (re)use within `shard`, evicting an
  /// unpinned LRU frame if necessary. Fails when every frame is
  /// pinned. Caller holds `shard.mu`.
  Result<size_t> AcquireFrame(Shard& shard) ODE_REQUIRES(shard.mu);
  /// Caller holds `shard.mu`.
  void TouchLru(Shard& shard, size_t frame_index) ODE_REQUIRES(shard.mu);

  Pager* pager_;
  Wal* wal_ = nullptr;
  size_t capacity_;
  size_t shard_count_;
  std::unique_ptr<Shard[]> shards_;
  std::shared_ptr<obs::Counter> prefetches_;
  std::shared_ptr<obs::Counter> cluster_prefetch_issued_;
  std::shared_ptr<obs::Histogram> fetch_latency_;
  std::atomic<uint8_t> read_ahead_policy_{
      static_cast<uint8_t>(ReadAheadPolicy::kSequential)};
  /// Guards only the source pointer: readers copy the shared_ptr and
  /// query outside the lock. Rank 65 — heap read-ahead sites may hold
  /// a frame latch (60), and the holder never enters a shard (70).
  mutable Mutex prefetch_source_mu_{LockRank::kClusterPrefetchSource};
  std::shared_ptr<const PrefetchSource> prefetch_source_
      ODE_GUARDED_BY(prefetch_source_mu_);
  BackgroundWorker prefetcher_;
};

}  // namespace ode::odb

#endif  // ODEVIEW_ODB_BUFFER_POOL_H_
