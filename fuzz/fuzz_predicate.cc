/// Fuzzes the condition-box predicate parser — the text a user types
/// into an OdeView condition box. Deep `!`/`(` nesting is depth-capped
/// rather than stack-limited; everything else must parse or fail
/// cleanly.

#include <cstdint>
#include <string_view>

#include "odb/predicate.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  auto predicate = ode::odb::ParsePredicate(text);
  if (predicate.ok()) {
    // A parsed predicate must render back to parseable text.
    (void)predicate->ToString();
  }
  return 0;
}
