#include "odeview/db_interactor.h"

#include <algorithm>
#include <sstream>

#include "common/strings.h"
#include "dynlink/synthesized.h"
#include "odb/predicate.h"
#include "owl/widgets.h"

namespace ode::view {

namespace {
constexpr owl::Size kSchemaWindowSize{72, 22};
constexpr owl::Size kClassInfoSize{52, 14};
constexpr owl::Size kClassDefSize{56, 16};
}  // namespace

DbInteractor::DbInteractor(owl::Server* server,
                           dynlink::ModuleRepository* repository,
                           DisplayStateRegistry* display_states,
                           odb::Database* db)
    : server_(server), db_(db), linker_(repository),
      session_(db->OpenSession()) {
  context_.db = db;
  context_.session = &session_;
  context_.server = server;
  context_.repository = repository;
  context_.linker = &linker_;
  context_.display_states = display_states;
  context_.db_name = db->name();
  context_.on_project_request = [this](const std::string& class_name) {
    (void)OpenProjectionDialog(class_name);
  };
}

DbInteractor::~DbInteractor() {
  object_sets_.clear();  // browse trees destroy their windows
  auto destroy_all = [&](const std::map<std::string, owl::WindowId>& map) {
    for (const auto& [name, id] : map) (void)server_->DestroyWindow(id);
  };
  destroy_all(class_info_windows_);
  destroy_all(class_def_windows_);
  destroy_all(selection_dialogs_);
  destroy_all(projection_dialogs_);
  if (schema_window_ != owl::kNoWindow) {
    (void)server_->DestroyWindow(schema_window_);
  }
}

Status DbInteractor::OpenSchemaWindow() {
  if (schema_window_ != owl::kNoWindow) {
    if (owl::Window* window = server_->FindWindow(schema_window_)) {
      window->set_open(true);
      return Status::OK();
    }
  }
  dag::Digraph graph;
  // Every class is a node; inheritance edges run base -> derived.
  for (const odb::ClassDef& def : db_->schema().classes()) {
    graph.EnsureNode(def.name);
  }
  for (const auto& [base, derived] : db_->schema().InheritanceEdges()) {
    dag::NodeId from = graph.EnsureNode(base);
    dag::NodeId to = graph.EnsureNode(derived);
    (void)graph.AddEdge(from, to);
  }
  owl::Window* window = server_->CreateWindow(
      db_->name() + " schema", owl::Server::kAutoPlace, kSchemaWindowSize);
  schema_window_ = window->id();
  auto view = std::make_unique<DagView>(
      "dag", std::move(graph),
      [this](const std::string& cls) { (void)OpenClassInfo(cls); });
  view->set_rect(owl::Rect{0, 1, kSchemaWindowSize.width,
                           kSchemaWindowSize.height - 1});
  auto* zoom_in = static_cast<owl::Button*>(window->root()->AddChild(
      std::make_unique<owl::Button>("zoom-in", "zoom in",
                                    [this](owl::Button&) {
                                      (void)ZoomIn();
                                    })));
  zoom_in->set_rect(owl::Rect{0, 0, 11, 1});
  auto* zoom_out = static_cast<owl::Button*>(window->root()->AddChild(
      std::make_unique<owl::Button>("zoom-out", "zoom out",
                                    [this](owl::Button&) {
                                      (void)ZoomOut();
                                    })));
  zoom_out->set_rect(owl::Rect{12, 0, 12, 1});
  dag_view_ = static_cast<DagView*>(window->root()->AddChild(std::move(view)));
  return Status::OK();
}

Status DbInteractor::ZoomIn() {
  if (dag_view_ == nullptr) {
    return Status::FailedPrecondition("schema window is not open");
  }
  return dag_view_->ZoomIn();
}

Status DbInteractor::ZoomOut() {
  if (dag_view_ == nullptr) {
    return Status::FailedPrecondition("schema window is not open");
  }
  return dag_view_->ZoomOut();
}

void DbInteractor::AddClassListMenu(owl::Widget* root,
                                    const std::string& widget_name,
                                    const std::vector<std::string>& classes,
                                    const owl::Rect& rect) {
  auto menu = std::make_unique<owl::Menu>(
      widget_name, classes,
      [this](int, const std::string& cls) { (void)OpenClassInfo(cls); });
  menu->set_rect(rect);
  root->AddChild(std::move(menu));
}

Status DbInteractor::OpenClassInfo(const std::string& class_name) {
  auto existing = class_info_windows_.find(class_name);
  if (existing != class_info_windows_.end()) {
    if (owl::Window* window = server_->FindWindow(existing->second)) {
      window->set_open(true);
      return Status::OK();
    }
    class_info_windows_.erase(existing);
  }
  ODE_ASSIGN_OR_RETURN(const odb::ClassDef* def,
                       db_->GetClass(class_name));
  ODE_ASSIGN_OR_RETURN(std::vector<std::string> supers,
                       db_->schema().DirectSuperclasses(class_name));
  ODE_ASSIGN_OR_RETURN(std::vector<std::string> subs,
                       db_->schema().DirectSubclasses(class_name));
  uint64_t count = 0;
  if (def->persistent) {
    ODE_ASSIGN_OR_RETURN(count, db_->ClusterCount(class_name));
  }
  owl::Window* window =
      server_->CreateWindow("class " + class_name, owl::Server::kAutoPlace,
                            kClassInfoSize);
  class_info_windows_[class_name] = window->id();
  owl::Widget* root = window->root();

  int column = kClassInfoSize.width / 2 - 1;
  // Left column: superclasses + subclasses (clickable, Fig. 3 & 5).
  auto* supers_label = static_cast<owl::Label*>(root->AddChild(
      std::make_unique<owl::Label>("supers-label", "superclasses:")));
  supers_label->set_rect(owl::Rect{0, 0, column, 1});
  AddClassListMenu(root, "supers-menu",
                   supers.empty() ? std::vector<std::string>{"<none>"}
                                  : supers,
                   owl::Rect{0, 1, column, 4});
  auto* subs_label = static_cast<owl::Label*>(root->AddChild(
      std::make_unique<owl::Label>("subs-label", "subclasses:")));
  subs_label->set_rect(owl::Rect{0, 5, column, 1});
  AddClassListMenu(root, "subs-menu",
                   subs.empty() ? std::vector<std::string>{"<none>"} : subs,
                   owl::Rect{0, 6, column, 4});
  // Right column: metadata.
  std::ostringstream meta;
  meta << "class: " << class_name << "\n";
  meta << (def->persistent ? "persistent" : "transient");
  if (def->versioned) meta << ", versioned";
  meta << "\n";
  meta << "members: " << def->members.size() << "\n";
  meta << "methods: " << def->methods.size() << "\n";
  meta << "objects in cluster: " << count << "\n";
  auto meta_text = std::make_unique<owl::ScrollText>(
      "meta", Split(meta.str(), '\n'));
  meta_text->set_rect(
      owl::Rect{column + 1, 0, kClassInfoSize.width - column - 1, 10});
  root->AddChild(std::move(meta_text));
  // Buttons.
  auto* def_button = static_cast<owl::Button*>(root->AddChild(
      std::make_unique<owl::Button>(
          "definition", "definition", [this, class_name](owl::Button&) {
            (void)OpenClassDefinition(class_name);
          })));
  def_button->set_rect(owl::Rect{0, 11, 14, 1});
  auto* objects_button = static_cast<owl::Button*>(root->AddChild(
      std::make_unique<owl::Button>(
          "objects", "objects", [this, class_name](owl::Button&) {
            (void)OpenObjectSet(class_name);
          })));
  objects_button->set_rect(owl::Rect{15, 11, 11, 1});
  if (!def->persistent) objects_button->set_enabled(false);
  return Status::OK();
}

owl::WindowId DbInteractor::class_info_window(
    const std::string& class_name) const {
  auto it = class_info_windows_.find(class_name);
  return it == class_info_windows_.end() ? owl::kNoWindow : it->second;
}

Status DbInteractor::OpenClassDefinition(const std::string& class_name) {
  auto existing = class_def_windows_.find(class_name);
  if (existing != class_def_windows_.end()) {
    if (owl::Window* window = server_->FindWindow(existing->second)) {
      window->set_open(true);
      return Status::OK();
    }
    class_def_windows_.erase(existing);
  }
  ODE_ASSIGN_OR_RETURN(const odb::ClassDef* def, db_->GetClass(class_name));
  owl::Window* window = server_->CreateWindow(
      class_name + " definition", owl::Server::kAutoPlace, kClassDefSize);
  class_def_windows_[class_name] = window->id();
  auto text = std::make_unique<owl::ScrollText>(
      "source", Split(def->source.empty()
                          ? "// definition source unavailable"
                          : def->source,
                      '\n'));
  text->set_rect(
      owl::Rect{0, 0, kClassDefSize.width, kClassDefSize.height});
  window->root()->AddChild(std::move(text));
  return Status::OK();
}

owl::WindowId DbInteractor::class_def_window(
    const std::string& class_name) const {
  auto it = class_def_windows_.find(class_name);
  return it == class_def_windows_.end() ? owl::kNoWindow : it->second;
}

Result<BrowseNode*> DbInteractor::OpenObjectSet(
    const std::string& class_name) {
  if (BrowseNode* existing = FindObjectSet(class_name)) return existing;
  ODE_ASSIGN_OR_RETURN(std::unique_ptr<BrowseNode> node,
                       BrowseNode::CreateClusterSet(&context_, class_name));
  object_sets_.push_back(std::move(node));
  return object_sets_.back().get();
}

BrowseNode* DbInteractor::FindObjectSet(const std::string& class_name) {
  for (const auto& node : object_sets_) {
    if (node->class_name() == class_name) return node.get();
  }
  return nullptr;
}

Status DbInteractor::CloseObjectSet(const std::string& class_name) {
  for (size_t i = 0; i < object_sets_.size(); ++i) {
    if (object_sets_[i]->class_name() == class_name) {
      object_sets_.erase(object_sets_.begin() + static_cast<long>(i));
      return Status::OK();
    }
  }
  return Status::NotFound("no object set open for class '" + class_name +
                          "'");
}

Status DbInteractor::OpenSelectionDialog(const std::string& class_name) {
  auto existing = selection_dialogs_.find(class_name);
  if (existing != selection_dialogs_.end()) {
    if (owl::Window* window = server_->FindWindow(existing->second)) {
      window->set_open(true);
      return Status::OK();
    }
    selection_dialogs_.erase(existing);
  }
  ODE_ASSIGN_OR_RETURN(BrowseNode * node, OpenObjectSet(class_name));
  ODE_ASSIGN_OR_RETURN(std::vector<std::string> selectlist,
                       node->SelectList());
  if (selectlist.empty()) {
    return Status::FailedPrecondition("class '" + class_name +
                                      "' has no selectable attributes");
  }
  owl::Size size{56, static_cast<int>(selectlist.size()) + 12};
  owl::Window* window = server_->CreateWindow(
      class_name + " selection", owl::Server::kAutoPlace, size);
  selection_dialogs_[class_name] = window->id();
  owl::Widget* root = window->root();

  // Scheme 1 (menu-based, after Pasta-3 [18]): attribute menu, operator
  // menu, value field, and an "add" button accumulating conjuncts.
  auto* attr_menu = static_cast<owl::Menu*>(root->AddChild(
      std::make_unique<owl::Menu>("attr-menu", selectlist)));
  attr_menu->set_rect(
      owl::Rect{0, 1, 20, static_cast<int>(selectlist.size())});
  auto* attr_label = static_cast<owl::Label*>(root->AddChild(
      std::make_unique<owl::Label>("attr-label", "attribute:")));
  attr_label->set_rect(owl::Rect{0, 0, 20, 1});

  static const std::vector<std::string> kOps = {"==", "!=", "<",       "<=",
                                                ">",  ">=", "contains"};
  auto* op_menu = static_cast<owl::Menu*>(
      root->AddChild(std::make_unique<owl::Menu>("op-menu", kOps)));
  op_menu->set_rect(owl::Rect{22, 1, 12, static_cast<int>(kOps.size())});
  auto* op_label = static_cast<owl::Label*>(root->AddChild(
      std::make_unique<owl::Label>("op-label", "operator:")));
  op_label->set_rect(owl::Rect{22, 0, 12, 1});

  auto* value_input = static_cast<owl::TextInput*>(root->AddChild(
      std::make_unique<owl::TextInput>("value")));
  value_input->set_rect(owl::Rect{36, 1, 18, 1});
  auto* value_label = static_cast<owl::Label*>(root->AddChild(
      std::make_unique<owl::Label>("value-label", "value:")));
  value_label->set_rect(owl::Rect{36, 0, 12, 1});
  window->set_focus(value_input);

  int row = static_cast<int>(selectlist.size()) + 2;
  auto* draft_label = static_cast<owl::Label*>(root->AddChild(
      std::make_unique<owl::Label>("draft", "predicate: <empty>")));
  draft_label->set_rect(owl::Rect{0, row + 1, size.width, 1});

  auto add_conjunct = [this, class_name, attr_menu, op_menu, value_input,
                       draft_label](const std::string& connector) {
    if (attr_menu->selected() < 0 || op_menu->selected() < 0) return;
    const std::string attr =
        attr_menu->items()[static_cast<size_t>(attr_menu->selected())];
    const std::string op =
        op_menu->items()[static_cast<size_t>(op_menu->selected())];
    std::string value = value_input->text();
    if (value.empty()) return;
    // Quote non-numeric values for the predicate language.
    bool numeric = !value.empty() &&
                   value.find_first_not_of("0123456789.-") ==
                       std::string::npos;
    std::string term =
        attr + " " + op + " " + (numeric ? value : "\"" + value + "\"");
    std::string& draft = selection_drafts_[class_name];
    if (draft.empty()) {
      draft = term;
    } else {
      draft += " " + connector + " " + term;
    }
    draft_label->set_text("predicate: " + draft);
  };
  auto* and_button = static_cast<owl::Button*>(root->AddChild(
      std::make_unique<owl::Button>(
          "add-and", "AND",
          [add_conjunct](owl::Button&) { add_conjunct("&&"); })));
  and_button->set_rect(owl::Rect{0, row, 7, 1});
  auto* or_button = static_cast<owl::Button*>(root->AddChild(
      std::make_unique<owl::Button>(
          "add-or", "OR",
          [add_conjunct](owl::Button&) { add_conjunct("||"); })));
  or_button->set_rect(owl::Rect{8, row, 6, 1});
  auto* apply_button = static_cast<owl::Button*>(root->AddChild(
      std::make_unique<owl::Button>(
          "apply", "apply", [this, class_name](owl::Button&) {
            auto it = selection_drafts_.find(class_name);
            if (it != selection_drafts_.end() && !it->second.empty()) {
              (void)ApplyConditionBox(class_name, it->second);
            }
          })));
  apply_button->set_rect(owl::Rect{15, row, 9, 1});
  auto* clear_button = static_cast<owl::Button*>(root->AddChild(
      std::make_unique<owl::Button>(
          "clear", "clear",
          [this, class_name, draft_label](owl::Button&) {
            selection_drafts_[class_name].clear();
            draft_label->set_text("predicate: <empty>");
            (void)ClearSelection(class_name);
          })));
  clear_button->set_rect(owl::Rect{25, row, 9, 1});

  // Scheme 2 (QBE-style condition box [34]): type the whole condition.
  auto* box_label = static_cast<owl::Label*>(root->AddChild(
      std::make_unique<owl::Label>("box-label",
                                   "condition box (QBE style):")));
  box_label->set_rect(owl::Rect{0, row + 3, size.width, 1});
  auto* box = static_cast<owl::TextInput*>(root->AddChild(
      std::make_unique<owl::TextInput>(
          "condition-box", [this, class_name](const std::string& text) {
            (void)ApplyConditionBox(class_name, text);
          })));
  box->set_rect(owl::Rect{0, row + 4, size.width, 1});
  auto* status = static_cast<owl::Label*>(root->AddChild(
      std::make_unique<owl::Label>("status", "")));
  status->set_rect(owl::Rect{0, row + 6, size.width, 1});
  return Status::OK();
}

owl::WindowId DbInteractor::selection_dialog(
    const std::string& class_name) const {
  auto it = selection_dialogs_.find(class_name);
  return it == selection_dialogs_.end() ? owl::kNoWindow : it->second;
}

Status DbInteractor::ApplyConditionBox(const std::string& class_name,
                                       const std::string& condition) {
  ODE_ASSIGN_OR_RETURN(BrowseNode * node, OpenObjectSet(class_name));
  auto report = [&](const Status& status) {
    auto it = selection_dialogs_.find(class_name);
    if (it == selection_dialogs_.end()) return;
    if (owl::Window* window = server_->FindWindow(it->second)) {
      if (auto* label =
              dynamic_cast<owl::Label*>(window->FindWidget("status"))) {
        label->set_text(status.ok() ? "selection applied"
                                    : status.ToString());
      }
    }
  };
  Result<odb::Predicate> predicate = odb::ParsePredicate(condition);
  if (!predicate.ok()) {
    report(predicate.status());
    return predicate.status();
  }
  Status applied = node->SetSelection(std::move(*predicate), condition);
  report(applied);
  return applied;
}

Status DbInteractor::ClearSelection(const std::string& class_name) {
  ODE_ASSIGN_OR_RETURN(BrowseNode * node, OpenObjectSet(class_name));
  return node->ClearSelection();
}

Status DbInteractor::OpenProjectionDialog(const std::string& class_name) {
  auto existing = projection_dialogs_.find(class_name);
  if (existing != projection_dialogs_.end()) {
    if (owl::Window* window = server_->FindWindow(existing->second)) {
      window->set_open(true);
      return Status::OK();
    }
    projection_dialogs_.erase(existing);
  }
  ODE_ASSIGN_OR_RETURN(BrowseNode * node, OpenObjectSet(class_name));
  ODE_ASSIGN_OR_RETURN(std::vector<std::string> displaylist,
                       node->DisplayList());
  if (displaylist.empty()) {
    return Status::FailedPrecondition("class '" + class_name +
                                      "' has an empty displaylist");
  }
  owl::Size size{40, static_cast<int>(displaylist.size()) + 4};
  owl::Window* window = server_->CreateWindow(
      class_name + " projection", owl::Server::kAutoPlace, size);
  projection_dialogs_[class_name] = window->id();
  owl::Widget* root = window->root();
  std::vector<owl::Button*> attr_buttons;
  for (size_t i = 0; i < displaylist.size(); ++i) {
    auto* button = static_cast<owl::Button*>(root->AddChild(
        std::make_unique<owl::Button>("attr:" + displaylist[i],
                                      displaylist[i])));
    button->set_toggle_mode(true);
    button->set_rect(
        owl::Rect{0, static_cast<int>(i),
                  static_cast<int>(displaylist[i].size()) + 4, 1});
    attr_buttons.push_back(button);
  }
  int row = static_cast<int>(displaylist.size()) + 1;
  auto* all_button = static_cast<owl::Button*>(root->AddChild(
      std::make_unique<owl::Button>(
          "ALL", "ALL", [node, attr_buttons](owl::Button&) {
            for (owl::Button* b : attr_buttons) b->set_toggled(false);
            (void)node->ClearProjection();
          })));
  all_button->set_rect(owl::Rect{0, row, 7, 1});
  auto* apply_button = static_cast<owl::Button*>(root->AddChild(
      std::make_unique<owl::Button>(
          "apply", "apply",
          [node, attr_buttons, displaylist](owl::Button&) {
            std::vector<std::string> chosen;
            for (size_t i = 0; i < attr_buttons.size(); ++i) {
              if (attr_buttons[i]->toggled()) {
                chosen.push_back(displaylist[i]);
              }
            }
            if (chosen.empty()) {
              (void)node->ClearProjection();
            } else {
              (void)node->SetProjection(chosen);
            }
          })));
  apply_button->set_rect(owl::Rect{8, row, 9, 1});
  return Status::OK();
}

owl::WindowId DbInteractor::projection_dialog(
    const std::string& class_name) const {
  auto it = projection_dialogs_.find(class_name);
  return it == projection_dialogs_.end() ? owl::kNoWindow : it->second;
}

Result<JoinView*> DbInteractor::OpenJoinView(const std::string& left_class,
                                             const std::string& right_class,
                                             const std::string& condition) {
  ODE_ASSIGN_OR_RETURN(odb::Predicate predicate,
                       odb::ParsePredicate(condition));
  ODE_ASSIGN_OR_RETURN(
      std::unique_ptr<JoinView> view,
      JoinView::Create(&context_, left_class, right_class,
                       std::move(predicate), condition));
  join_views_.push_back(std::move(view));
  return join_views_.back().get();
}

Status DbInteractor::CloseJoinView(JoinView* view) {
  for (auto it = join_views_.begin(); it != join_views_.end(); ++it) {
    if (it->get() == view) {
      join_views_.erase(it);  // destructor destroys the view's windows
      return Status::OK();
    }
  }
  return Status::NotFound("join view is not open in this interactor");
}

void DbInteractor::set_privileged(bool privileged) {
  context_.privileged = privileged;
  for (const auto& node : object_sets_) {
    (void)node->RefreshSubtree();
  }
}

bool DbInteractor::privileged() const { return context_.privileged; }

Status DbInteractor::OnClassChanged(const std::string& class_name) {
  linker_.Invalidate(db_->name(), class_name);
  for (const auto& node : object_sets_) {
    ODE_RETURN_IF_ERROR(node->RefreshSubtree());
  }
  // Class info/definition windows are refreshed by recreating them on
  // next open; mark existing ones closed so stale data is not shown.
  auto close_window = [&](std::map<std::string, owl::WindowId>* map) {
    auto it = map->find(class_name);
    if (it != map->end()) {
      (void)server_->DestroyWindow(it->second);
      map->erase(it);
    }
  };
  close_window(&class_info_windows_);
  close_window(&class_def_windows_);
  // Selection/projection dialogs enumerate the class's attribute
  // lists; stale ones must be rebuilt too.
  close_window(&selection_dialogs_);
  close_window(&projection_dialogs_);
  selection_drafts_.erase(class_name);
  return Status::OK();
}

}  // namespace ode::view
