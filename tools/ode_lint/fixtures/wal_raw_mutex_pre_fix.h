/// In-memory store with a power-loss model for tests: `Sync()` rolls
/// the durable watermark forward (or fails when a failure budget is
/// armed), and `durable_bytes()` is what a crash would leave behind.
class MemWalStore final : public WalStore {
 public:
  Status Append(std::string_view bytes) override;
  Status Sync() override;
  Result<std::string> ReadAll() override;
  Status Reset(std::string_view header) override;
  Status TruncateTo(uint64_t size) override;
  uint64_t size() const override;

  /// When true every `Sync()` fails (appends still succeed).
  void set_fail_syncs(bool fail);
  /// The durable prefix — what survives a simulated power loss.
  std::string durable_bytes() const;
  /// The full volatile contents (synced or not).
  std::string contents() const;

 private:
  mutable std::mutex mu_;
  std::string bytes_;
  uint64_t synced_ = 0;
  bool fail_syncs_ = false;
};

