#ifndef ODEVIEW_ODB_OID_H_
#define ODEVIEW_ODB_OID_H_

#include <cstdint>
#include <functional>
#include <string>

namespace ode::odb {

/// Identifier of a cluster (the set of persistent objects of one class).
using ClusterId = uint32_t;

/// Logical object identifier: stable across updates and relocations.
///
/// Ode groups persistent objects of one type into a *cluster*; an `Oid`
/// names the cluster plus a per-cluster logical id assigned at creation
/// and never reused. The physical (page, slot) location is resolved
/// through the cluster's object directory.
struct Oid {
  ClusterId cluster = 0;
  uint64_t local = 0;

  bool IsNull() const { return cluster == 0 && local == 0; }
  static Oid Null() { return Oid{}; }

  friend bool operator==(const Oid& a, const Oid& b) {
    return a.cluster == b.cluster && a.local == b.local;
  }
  friend bool operator!=(const Oid& a, const Oid& b) { return !(a == b); }
  friend bool operator<(const Oid& a, const Oid& b) {
    if (a.cluster != b.cluster) return a.cluster < b.cluster;
    return a.local < b.local;
  }

  /// "c<cluster>:o<local>", e.g. "c3:o17"; "null" for the null OID.
  std::string ToString() const;
};

}  // namespace ode::odb

template <>
struct std::hash<ode::odb::Oid> {
  size_t operator()(const ode::odb::Oid& oid) const noexcept {
    return std::hash<uint64_t>()((static_cast<uint64_t>(oid.cluster) << 40) ^
                                 oid.local);
  }
};

#endif  // ODEVIEW_ODB_OID_H_
