file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_join.dir/bench_ext_join.cc.o"
  "CMakeFiles/bench_ext_join.dir/bench_ext_join.cc.o.d"
  "bench_ext_join"
  "bench_ext_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
