#include "dynlink/linker.h"

#include "common/metrics.h"
#include "common/trace.h"

namespace ode::dynlink {

namespace {
/// Deterministic busy-work standing in for relocation/symbol
/// resolution: checksums `size` pseudo-bytes.
uint64_t SimulateLoadWork(size_t size) {
  uint64_t checksum = 0x811c9dc5;
  for (size_t i = 0; i < size; ++i) {
    checksum = (checksum ^ (i & 0xff)) * 0x01000193;
  }
  return checksum;
}

// Registry mirrors of the per-linker Stats struct, so exports see
// dynamic-link activity without holding a linker pointer.
obs::Counter& LinkLoads() {
  static obs::Counter* c = obs::Registry::Global().counter("dynlink.loads");
  return *c;
}
obs::Counter& LinkCacheHits() {
  static obs::Counter* c =
      obs::Registry::Global().counter("dynlink.cache_hits");
  return *c;
}
obs::Counter& LinkBytesLoaded() {
  static obs::Counter* c =
      obs::Registry::Global().counter("dynlink.bytes_loaded");
  return *c;
}
obs::Counter& LinkInvalidations() {
  static obs::Counter* c =
      obs::Registry::Global().counter("dynlink.invalidations");
  return *c;
}
}  // namespace

Result<const DisplayFunction*> DynamicLinker::Load(
    const std::string& db_name, const std::string& class_name,
    const std::string& format) {
  Key key{db_name, class_name, format};
  auto it = loaded_.find(key);
  if (it != loaded_.end()) {
    ++stats_.cache_hits;
    LinkCacheHits().Increment();
    return &it->second;
  }
  ODE_TRACE_SPAN("dynlink.load");
  ODE_ASSIGN_OR_RETURN(const DisplayModule* module,
                       repository_->Find(db_name, class_name, format));
  // "ld_dispfn": simulate the load.
  volatile uint64_t sink = SimulateLoadWork(module->code_size);
  (void)sink;
  ++stats_.loads;
  stats_.bytes_loaded += module->code_size;
  LinkLoads().Increment();
  LinkBytesLoaded().Add(module->code_size);
  auto [pos, inserted] = loaded_.emplace(key, module->function);
  (void)inserted;
  return &pos->second;
}

bool DynamicLinker::IsLoaded(const std::string& db_name,
                             const std::string& class_name,
                             const std::string& format) const {
  return loaded_.find(Key{db_name, class_name, format}) != loaded_.end();
}

int DynamicLinker::Invalidate(const std::string& db_name,
                              const std::string& class_name) {
  int removed = 0;
  for (auto it = loaded_.begin(); it != loaded_.end();) {
    if (it->first.db == db_name && it->first.cls == class_name) {
      it = loaded_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  if (removed > 0) {
    ++stats_.invalidations;
    LinkInvalidations().Increment();
  }
  return removed;
}

void DynamicLinker::UnloadAll() { loaded_.clear(); }

}  // namespace ode::dynlink
