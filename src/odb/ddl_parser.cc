#include "odb/ddl_parser.h"

#include <cstdlib>

#include "common/strings.h"
#include "odb/lexer.h"

namespace ode::odb {

namespace {

/// Recursive-descent parser over the token stream. Keeps the raw input
/// around to slice verbatim source (class bodies, constraint text).
class DdlParser {
 public:
  DdlParser(std::string_view input, std::vector<Token> tokens)
      : input_(input), cursor_(std::move(tokens)) {}

  Result<Schema> ParseAll() {
    Schema schema;
    while (!cursor_.AtEnd()) {
      ODE_ASSIGN_OR_RETURN(ClassDef def, ParseClass());
      ODE_RETURN_IF_ERROR(schema.AddClass(std::move(def)));
    }
    return schema;
  }

  Result<ClassDef> ParseClass() {
    ClassDef def;
    size_t start_offset = cursor_.Peek().offset;
    // Modifiers, in any order. Classes are persistent unless marked
    // `transient` (every class in an Ode database gets a cluster).
    bool explicit_persistent = false;
    bool transient = false;
    for (;;) {
      if (cursor_.TryConsumeIdent("persistent")) {
        explicit_persistent = true;
      } else if (cursor_.TryConsumeIdent("versioned")) {
        def.versioned = true;
      } else if (cursor_.TryConsumeIdent("transient")) {
        transient = true;
      } else {
        break;
      }
    }
    if (transient && explicit_persistent) {
      return cursor_.ErrorHere("class cannot be persistent and transient");
    }
    def.persistent = !transient;
    ODE_RETURN_IF_ERROR(cursor_.ExpectIdent("class"));
    ODE_ASSIGN_OR_RETURN(def.name, cursor_.ExpectAnyIdent());
    if (cursor_.TryConsumePunct(":")) {
      do {
        // Base access specifiers are accepted and ignored (inheritance
        // in our catalog is always public, as the paper's examples are).
        cursor_.TryConsumeIdent("public") ||
            cursor_.TryConsumeIdent("private") ||
            cursor_.TryConsumeIdent("protected") ||
            cursor_.TryConsumeIdent("virtual");
        ODE_ASSIGN_OR_RETURN(std::string base, cursor_.ExpectAnyIdent());
        def.bases.push_back(std::move(base));
      } while (cursor_.TryConsumePunct(","));
    }
    ODE_RETURN_IF_ERROR(cursor_.ExpectPunct("{"));
    Access access = Access::kPrivate;  // C++ class default
    while (!cursor_.TryConsumePunct("}")) {
      if (cursor_.AtEnd()) {
        return cursor_.ErrorHere("unterminated class body for '" +
                                 def.name + "'");
      }
      ODE_RETURN_IF_ERROR(ParseClassItem(&def, &access));
    }
    const Token& closing = cursor_.Peek();  // the ';' after '}'
    ODE_RETURN_IF_ERROR(cursor_.ExpectPunct(";"));
    size_t end_offset = closing.offset + closing.length;
    def.source = std::string(StripWhitespace(
        input_.substr(start_offset, end_offset - start_offset)));
    return def;
  }

  bool AtEnd() const { return cursor_.AtEnd(); }

 private:
  Status ParseClassItem(ClassDef* def, Access* access) {
    const Token& tok = cursor_.Peek();
    // Access sections.
    if (tok.IsIdent("public") || tok.IsIdent("private") ||
        tok.IsIdent("protected")) {
      // Disambiguate "public:" from a member type named "public" (none
      // exist, but keep parsing strict).
      std::string word = cursor_.Next().text;
      ODE_RETURN_IF_ERROR(cursor_.ExpectPunct(":"));
      *access = word == "public"
                    ? Access::kPublic
                    : (word == "protected" ? Access::kProtected
                                           : Access::kPrivate);
      return Status::OK();
    }
    if (tok.IsIdent("display")) {
      cursor_.Next();
      return ParseIdentList(&def->display_formats);
    }
    if (tok.IsIdent("displaylist")) {
      cursor_.Next();
      return ParseIdentList(&def->displaylist);
    }
    if (tok.IsIdent("selectlist")) {
      cursor_.Next();
      return ParseIdentList(&def->selectlist);
    }
    if (tok.IsIdent("constraint")) {
      cursor_.Next();
      ODE_ASSIGN_OR_RETURN(std::string text, CaptureUntilSemicolon());
      def->constraints.push_back({std::move(text)});
      return Status::OK();
    }
    if (tok.IsIdent("trigger")) {
      cursor_.Next();
      return ParseTrigger(def);
    }
    return ParseMemberOrMethod(def, *access);
  }

  Status ParseIdentList(std::vector<std::string>* out) {
    do {
      ODE_ASSIGN_OR_RETURN(std::string id, cursor_.ExpectAnyIdent());
      out->push_back(std::move(id));
    } while (cursor_.TryConsumePunct(","));
    return FinishStatement();
  }

  /// trigger NAME ":" EVENT ["when" <raw>] "do" ACTION ";"
  Status ParseTrigger(ClassDef* def) {
    TriggerDef trig;
    ODE_ASSIGN_OR_RETURN(trig.name, cursor_.ExpectAnyIdent());
    ODE_RETURN_IF_ERROR(cursor_.ExpectPunct(":"));
    ODE_ASSIGN_OR_RETURN(std::string event, cursor_.ExpectAnyIdent());
    if (event == "on_create") {
      trig.event = TriggerEvent::kCreate;
    } else if (event == "on_update") {
      trig.event = TriggerEvent::kUpdate;
    } else if (event == "on_delete") {
      trig.event = TriggerEvent::kDelete;
    } else {
      return cursor_.ErrorHere("unknown trigger event '" + event + "'");
    }
    if (cursor_.TryConsumeIdent("when")) {
      size_t start = cursor_.Peek().offset;
      while (!cursor_.AtEnd() && !cursor_.Peek().IsIdent("do")) {
        cursor_.Next();
      }
      if (cursor_.AtEnd()) {
        return cursor_.ErrorHere("trigger missing 'do'");
      }
      trig.condition_text = std::string(StripWhitespace(
          input_.substr(start, cursor_.Peek().offset - start)));
    }
    ODE_RETURN_IF_ERROR(cursor_.ExpectIdent("do"));
    ODE_ASSIGN_OR_RETURN(trig.action, cursor_.ExpectAnyIdent());
    def->triggers.push_back(std::move(trig));
    return FinishStatement();
  }

  Result<std::string> CaptureUntilSemicolon() {
    size_t start = cursor_.Peek().offset;
    while (!cursor_.AtEnd() && !cursor_.Peek().IsPunct(";")) {
      cursor_.Next();
    }
    if (cursor_.AtEnd()) {
      return cursor_.ErrorHere("expected ';'");
    }
    std::string text(StripWhitespace(
        input_.substr(start, cursor_.Peek().offset - start)));
    ODE_RETURN_IF_ERROR(FinishStatement());
    return text;
  }

  /// TYPE NAME ("[" N "]")? ";"           -- data member
  /// TYPE NAME "(" ... ")" ["const"] ";"  -- method (metadata)
  Status ParseMemberOrMethod(ClassDef* def, Access access) {
    cursor_.TryConsumeIdent("const");  // accepted, not recorded
    ODE_ASSIGN_OR_RETURN(TypeRef type, ParseType());
    ODE_ASSIGN_OR_RETURN(std::string name, cursor_.ExpectAnyIdent());
    if (cursor_.TryConsumePunct("(")) {
      MethodDef method;
      method.name = std::move(name);
      method.return_type = type.ToString();
      method.access = access;
      size_t start = cursor_.Peek().offset;
      int depth = 1;
      while (!cursor_.AtEnd() && depth > 0) {
        if (cursor_.Peek().IsPunct("(")) ++depth;
        if (cursor_.Peek().IsPunct(")")) {
          --depth;
          if (depth == 0) break;
        }
        cursor_.Next();
      }
      if (cursor_.AtEnd()) return cursor_.ErrorHere("expected ')'");
      method.params = std::string(StripWhitespace(
          input_.substr(start, cursor_.Peek().offset - start)));
      cursor_.Next();  // ')'
      cursor_.TryConsumeIdent("const");
      def->methods.push_back(std::move(method));
      return FinishStatement();
    }
    MemberDef member;
    member.name = std::move(name);
    member.access = access;
    if (cursor_.TryConsumePunct("[")) {
      uint32_t size = 0;
      if (cursor_.Peek().Is(TokenKind::kInt)) {
        size = static_cast<uint32_t>(
            std::strtoul(cursor_.Next().text.c_str(), nullptr, 10));
      }
      ODE_RETURN_IF_ERROR(cursor_.ExpectPunct("]"));
      member.type = TypeRef::Array(std::move(type), size);
    } else {
      member.type = std::move(type);
    }
    def->members.push_back(std::move(member));
    return FinishStatement();
  }

  Result<TypeRef> ParseType() {
    // `set<` / `array<` recurse per nesting level; untrusted DDL can
    // nest arbitrarily deep, so bound it before the stack does.
    if (++type_depth_ > kMaxTypeDepth) {
      --type_depth_;
      return cursor_.ErrorHere("type nesting exceeds limit (" +
                               std::to_string(kMaxTypeDepth) + ")");
    }
    Result<TypeRef> type = ParseTypeInner();
    --type_depth_;
    return type;
  }

  Result<TypeRef> ParseTypeInner() {
    const Token& tok = cursor_.Peek();
    if (!tok.Is(TokenKind::kIdent)) {
      return cursor_.ErrorHere("expected a type name");
    }
    TypeRef base;
    std::string word = cursor_.Next().text;
    if (word == "int" || word == "long" || word == "short") {
      base = TypeRef::Int();
    } else if (word == "real" || word == "double" || word == "float") {
      base = TypeRef::Real();
    } else if (word == "bool") {
      base = TypeRef::Bool();
    } else if (word == "string" || word == "char") {
      // "char*" in O++ examples means a C string; normalize to string.
      if (word == "char" && cursor_.TryConsumePunct("*")) {
        return TypeRef::String();
      }
      base = TypeRef::String();
    } else if (word == "blob" || word == "bitmap") {
      base = TypeRef::Blob();
    } else if (word == "void") {
      base = TypeRef::Void();
    } else if (word == "set") {
      ODE_RETURN_IF_ERROR(cursor_.ExpectPunct("<"));
      ODE_ASSIGN_OR_RETURN(TypeRef element, ParseType());
      ODE_RETURN_IF_ERROR(cursor_.ExpectPunct(">"));
      base = TypeRef::Set(std::move(element));
    } else if (word == "array") {
      ODE_RETURN_IF_ERROR(cursor_.ExpectPunct("<"));
      ODE_ASSIGN_OR_RETURN(TypeRef element, ParseType());
      ODE_RETURN_IF_ERROR(cursor_.ExpectPunct(","));
      if (!cursor_.Peek().Is(TokenKind::kInt)) {
        return cursor_.ErrorHere("expected array size");
      }
      auto size = static_cast<uint32_t>(
          std::strtoul(cursor_.Next().text.c_str(), nullptr, 10));
      ODE_RETURN_IF_ERROR(cursor_.ExpectPunct(">"));
      base = TypeRef::Array(std::move(element), size);
    } else {
      base = TypeRef::Class(std::move(word));
    }
    // Pointer suffixes: one '*' on a class type makes a reference.
    while (cursor_.TryConsumePunct("*")) {
      if (base.kind == TypeRef::Kind::kClass) {
        base = TypeRef::Ref(std::move(base.class_name));
      } else if (base.kind == TypeRef::Kind::kRef) {
        return cursor_.ErrorHere(
            "multiple indirection is not supported in the O++ subset");
      } else {
        return cursor_.ErrorHere("pointer to non-class type");
      }
    }
    return base;
  }

  Status FinishStatement() { return cursor_.ExpectPunct(";"); }

  static constexpr int kMaxTypeDepth = 32;

  std::string_view input_;
  TokenCursor cursor_;
  int type_depth_ = 0;
};

}  // namespace

Result<Schema> ParseSchema(std::string_view source) {
  Lexer lexer(source);
  ODE_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  DdlParser parser(source, std::move(tokens));
  return parser.ParseAll();
}

Result<ClassDef> ParseClassDef(std::string_view source) {
  Lexer lexer(source);
  ODE_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  DdlParser parser(source, std::move(tokens));
  ODE_ASSIGN_OR_RETURN(ClassDef def, parser.ParseClass());
  if (!parser.AtEnd()) {
    return Status::InvalidArgument("trailing input after class definition");
  }
  return def;
}

}  // namespace ode::odb
