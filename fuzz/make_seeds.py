#!/usr/bin/env python3
"""Regenerates the committed seed corpus under fuzz/corpus/.

Each fuzz target gets a handful of well-formed inputs (so coverage
starts inside the interesting code, not at the magic-number check) plus
the malformed shapes that found real bugs — those also live inline in
tests/decode_corpus_test.cc as named regression tests.

The CRC used by every framed format is zlib's crc32 (ISO-HDLC), which
matches common/coding.h's Crc32. Run from the repo root:

    python3 fuzz/make_seeds.py
"""

import os
import struct
import zlib

ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "corpus")


def varint(n: int) -> bytes:
    out = bytearray()
    while True:
        b = n & 0x7F
        n >>= 7
        if n:
            out.append(b | 0x80)
        else:
            out.append(b)
            return bytes(out)


def zigzag(n: int) -> int:
    return ((n << 1) ^ (n >> 63)) & 0xFFFFFFFFFFFFFFFF


def lp(b: bytes) -> bytes:
    """Length-prefixed bytes."""
    return varint(len(b)) + b


# --- value codec (tags match ValueKind in src/odb/value.h) -------------

K_NULL, K_BOOL, K_INT, K_REAL, K_STRING, K_BLOB = 0, 1, 2, 3, 4, 5
K_STRUCT, K_ARRAY, K_SET, K_REF = 6, 7, 8, 9


def v_null() -> bytes:
    return bytes([K_NULL])


def v_int(n: int) -> bytes:
    return bytes([K_INT]) + varint(zigzag(n))


def v_real(x: float) -> bytes:
    return bytes([K_REAL]) + struct.pack("<d", x)


def v_string(s: str) -> bytes:
    return bytes([K_STRING]) + lp(s.encode())


def v_struct(fields) -> bytes:
    out = bytes([K_STRUCT]) + varint(len(fields))
    for name, value in fields:
        out += lp(name.encode()) + value
    return out


def v_array(elements) -> bytes:
    return bytes([K_ARRAY]) + varint(len(elements)) + b"".join(elements)


def v_ref(cluster: int, local: int, cls: str) -> bytes:
    return bytes([K_REF]) + varint(cluster) + varint(local) + lp(cls.encode())


def value_seeds():
    emp = v_struct(
        [
            ("name", v_string("agrawal")),
            ("salary", v_real(90000.0)),
            ("dept", v_ref(1, 42, "Dept")),
            ("projects", v_array([v_string("ode"), v_string("odeview")])),
        ]
    )
    yield "struct_employee", emp
    yield "int_negative", v_int(-123456789)
    yield "null", v_null()
    yield "bool_true", bytes([K_BOOL, 1])
    # The crasher shape: a struct claiming 2^60 fields with no bytes
    # behind the claim. Pre-fix this reserve()d ~exabytes.
    yield "forged_field_count", bytes([K_STRUCT]) + varint(1 << 60)
    # Nesting right at the depth cap boundary.
    deep = v_int(7)
    for _ in range(63):
        deep = v_array([deep])
    yield "deep_nesting", deep


# --- object record -----------------------------------------------------


def obj_record(version, history, current) -> bytes:
    out = varint(version) + varint(len(history))
    for ver, val in history:
        out += varint(ver) + lp(val)
    return out + current


def object_record_seeds():
    yield "simple", obj_record(3, [(1, v_int(10)), (2, v_int(20))], v_int(30))
    yield "no_history", obj_record(1, [], v_string("fresh"))
    # Forged history count with an empty tail (the reserve() crasher).
    yield "forged_history_count", varint(1) + varint(1 << 59)
    # History entry whose length prefix overruns the buffer.
    yield "lying_history_len", varint(2) + varint(1) + varint(1) + varint(200) + b"xy"


# --- slotted page ------------------------------------------------------

PAGE_USABLE = 4096 - 8  # kPageUsableSize (page minus LSN trailer)
HEADER = 12
SLOT = 4


def page(next_page, slots, records):
    """slots: list of (offset, length); records: {offset: bytes}."""
    buf = bytearray(4096)
    struct.pack_into("<I", buf, 0, next_page)
    struct.pack_into("<H", buf, 4, len(slots))
    live = [s for s in slots if s[0] != 0]
    free_end = min((s[0] for s in live), default=PAGE_USABLE)
    struct.pack_into("<H", buf, 6, free_end)
    struct.pack_into("<H", buf, 8, len(live))
    for i, (off, length) in enumerate(slots):
        struct.pack_into("<HH", buf, HEADER + i * SLOT, off, length)
    for off, data in records.items():
        buf[off : off + len(data)] = data
    return bytes(buf)


def slotted_page_seeds():
    rec = b"employee-record-bytes"
    off = PAGE_USABLE - len(rec)
    yield "one_record", page(0xFFFFFFFF, [(off, len(rec))], {off: rec})
    yield "empty", page(0xFFFFFFFF, [], {})
    # The crasher shapes: slot_count far past what fits in the page,
    # and a slot whose [offset, offset+len) runs off the end.
    hostile = bytearray(page(0, [], {}))
    struct.pack_into("<H", hostile, 4, 0xFFFF)
    yield "forged_slot_count", bytes(hostile)
    oob = bytearray(page(0, [(4000, 500)], {}))
    yield "slot_past_end", bytes(oob)


# --- WAL ---------------------------------------------------------------

WAL_MAGIC = 0x4F4445574C303155


def wal_header(base_lsn=0) -> bytes:
    h = struct.pack("<QII", WAL_MAGIC, 1, 0) + struct.pack("<Q", base_lsn)
    return h + struct.pack("<I", zlib.crc32(h)) + struct.pack("<I", 0)


def wal_record(rtype: int, txn: int, payload: bytes) -> bytes:
    body = struct.pack("<BQ", rtype, txn)
    crc = zlib.crc32(payload, zlib.crc32(body))
    return struct.pack("<I", len(payload)) + body + struct.pack("<I", crc) + payload


def wal_seeds():
    page_img = struct.pack("<I", 0) + b"\x42" * 4096
    committed = wal_header() + wal_record(1, 7, page_img) + wal_record(2, 7, b"")
    yield "committed_txn", committed
    yield "header_only", wal_header()
    yield "uncommitted_txn", wal_header() + wal_record(1, 9, page_img)
    yield "torn_tail", committed + wal_record(2, 8, b"")[:9]
    # The crasher shape: a committed image for page 2^31 — recovery
    # must refuse to grow the file toward it, not try.
    forged = struct.pack("<I", 1 << 31) + b"\x00" * 4096
    yield "forged_page_id", wal_header() + wal_record(1, 3, forged) + wal_record(
        2, 3, b""
    )


# --- ODEACC01 access trace ---------------------------------------------


def frame(payload: bytes) -> bytes:
    return (
        struct.pack("<I", len(payload)) + payload + struct.pack("<I", zlib.crc32(payload))
    )


def access_trace_seeds():
    classdef = bytes([1]) + varint(1) + lp(b"Employee")
    event = (
        bytes([2])
        + varint(0)  # op
        + varint(1)  # cluster
        + varint(42)  # local
        + varint(3)  # page
        + varint(1)  # class id
        + varint(5)  # session
        + varint(6)  # trace
        + varint(1000)  # ts
    )
    affinity = (
        bytes([3])
        + varint(1)
        + varint(42)
        + varint(1)
        + varint(1)
        + varint(43)
        + varint(1)
    )
    yield "full_trace", b"ODEACC01" + frame(classdef) + frame(event) + frame(affinity)
    yield "magic_only", b"ODEACC01"
    # Frame length claiming 2^31 bytes in a 30-byte file.
    yield "lying_frame_len", b"ODEACC01" + struct.pack("<I", 1 << 31) + b"\x00" * 18
    # Right CRC, wrong interior: event record cut mid-varint.
    torn = bytes([2]) + varint(0) + b"\xff"
    yield "torn_event", b"ODEACC01" + frame(torn)


# --- HTTP request line -------------------------------------------------


def http_seeds():
    yield "get_metrics", b"GET /metrics HTTP/1.0\r\n\r\n"
    yield "get_healthz", b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
    yield "no_spaces", b"GARBAGE\r\n"
    yield "spaces_only", b"   \r\n"
    yield "nul_bytes", b"GET /\x00\x01 HTTP/1.0\r\n"


# --- DDL ---------------------------------------------------------------


def ddl_seeds():
    yield "employee", (
        b"persistent class Employee {\n"
        b"public:\n  string name;\n  real salary;\n"
        b"  set<Project*> projects;\n};\n"
    )
    yield "nested_containers", b"class T { set<array<set<int>, 4>> x; };"
    # The crasher shape: nesting far past the depth cap.
    yield "deep_type_nesting", b"class T { " + b"set<" * 600 + b"int" + b">" * 600 + b" x; };"
    yield "unterminated_string", b'class T { string x = "abc'


# --- predicate ---------------------------------------------------------


def predicate_seeds():
    yield "simple", b'name == "agrawal" && salary > 50000'
    yield "contains", b'projects contains "ode"'
    yield "negation", b"!(a == 1 || b != 2)"
    # The crasher shape: parens past the depth cap.
    yield "deep_parens", b"(" * 4000 + b"a == 1" + b")" * 4000


TARGETS = {
    "value_codec": value_seeds,
    "object_record": object_record_seeds,
    "slotted_page": slotted_page_seeds,
    "wal_replay": wal_seeds,
    "access_trace": access_trace_seeds,
    "http_request": http_seeds,
    "ddl": ddl_seeds,
    "predicate": predicate_seeds,
}


def main():
    for target, generator in TARGETS.items():
        directory = os.path.join(ROOT, target)
        os.makedirs(directory, exist_ok=True)
        for name, data in generator():
            with open(os.path.join(directory, name), "wb") as f:
                f.write(data)
            print(f"{target}/{name}: {len(data)}B")


if __name__ == "__main__":
    main()
