// Figure 4: the class-definition window — retrieving and displaying a
// class's verbatim O++ source.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "odb/ddl_parser.h"
#include "owl/widgets.h"

namespace ode::bench {
namespace {

void BM_ClassDefinitionOpen(benchmark::State& state) {
  LabSession session = LabSession::Create();
  for (auto _ : state) {
    CheckOk(session.interactor->OpenClassDefinition("employee"), "open");
    state.PauseTiming();
    CheckOk(session.interactor->OnClassChanged("employee"), "reset");
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ClassDefinitionOpen);

void BM_ClassLookupVsSchemaSize(benchmark::State& state) {
  int classes = static_cast<int>(state.range(0));
  odb::Schema schema = ValueOrDie(
      odb::ParseSchema(odb::SyntheticSchemaDdl(classes, 2, 5)), "parse");
  std::string last = "cls_" + std::to_string(classes - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValueOrDie(schema.GetClass(last), "get"));
  }
  state.counters["classes"] = classes;
}
BENCHMARK(BM_ClassLookupVsSchemaSize)->Arg(10)->Arg(100)->Arg(1000);

void BM_DdlParseThroughput(benchmark::State& state) {
  // The cost of (re)loading schema source, which is what populates the
  // definition window in the first place.
  int classes = static_cast<int>(state.range(0));
  std::string ddl = odb::SyntheticSchemaDdl(classes, 2, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ValueOrDie(odb::ParseSchema(ddl), "parse"));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(ddl.size()));
  state.counters["classes"] = classes;
}
BENCHMARK(BM_DdlParseThroughput)->Arg(10)->Arg(100)->Arg(500);

void BM_DefinitionScrolling(benchmark::State& state) {
  // Scrolling the definition text (the window's scroll bars).
  LabSession session = LabSession::Create();
  CheckOk(session.interactor->OpenClassDefinition("employee"), "open");
  owl::Window* window = session.app->server()->FindWindow(
      session.interactor->class_def_window("employee"));
  auto* text = dynamic_cast<owl::ScrollText*>(window->FindWidget("source"));
  for (auto _ : state) {
    text->ScrollBy(1);
    benchmark::DoNotOptimize(text->VisibleLines());
    text->ScrollBy(-1);
  }
}
BENCHMARK(BM_DefinitionScrolling);

}  // namespace
}  // namespace ode::bench

ODE_BENCH_MAIN();
