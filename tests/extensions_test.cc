// Tests for the later-section features: §5.3 join views, the
// privileged (debug) display mode, and the referential-integrity
// checker on the substrate.

#include <gtest/gtest.h>

#include "dynlink/lab_modules.h"
#include "odb/integrity.h"
#include "odb/labdb.h"
#include "odeview/app.h"
#include "owl/widgets.h"

namespace ode::view {
namespace {

class ExtensionsSession : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::move(*odb::Database::CreateInMemory("lab"));
    odb::LabDbConfig config;
    config.employees = 20;
    config.managers = 4;
    config.departments = 4;
    ASSERT_TRUE(odb::BuildLabDatabase(db_.get(), config).ok());
    app_ = std::make_unique<OdeViewApp>(200, 80);
    ASSERT_TRUE(dynlink::RegisterLabDisplayModules(app_->repository(),
                                                   "lab", db_->schema())
                    .ok());
    ASSERT_TRUE(app_->AddDatabaseBorrowed(db_.get()).ok());
    interactor_ = *app_->OpenDatabase("lab");
  }

  std::string ScrollTextContent(owl::WindowId id) {
    owl::Window* window = app_->server()->FindWindow(id);
    if (window == nullptr) return "<no window>";
    auto* text =
        dynamic_cast<owl::ScrollText*>(window->FindWidget("content"));
    if (text == nullptr) return "<no widget>";
    std::string out;
    for (const std::string& line : text->lines()) out += line + "\n";
    return out;
  }

  std::unique_ptr<odb::Database> db_;
  std::unique_ptr<OdeViewApp> app_;
  DbInteractor* interactor_ = nullptr;
};

// --- §5.3 join views --------------------------------------------------------

TEST_F(ExtensionsSession, JoinFindsMatchingPairs) {
  // Employees joined to their own department by name equality of the
  // employee's dept name (via location match is fragile; use ages).
  Result<JoinView*> join = interactor_->OpenJoinView(
      "employee", "manager", "left.age == right.age");
  ASSERT_TRUE(join.ok()) << join.status().ToString();
  // Cross-check against a hand-rolled nested loop.
  size_t expected = 0;
  std::vector<odb::Oid> emps = *db_->ScanCluster("employee");
  std::vector<odb::Oid> mgrs = *db_->ScanCluster("manager");
  for (odb::Oid e : emps) {
    int64_t age_e =
        db_->GetObject(e)->value.FindField("age")->AsInt();
    for (odb::Oid m : mgrs) {
      if (db_->GetObject(m)->value.FindField("age")->AsInt() == age_e) {
        ++expected;
      }
    }
  }
  EXPECT_EQ((*join)->pair_count(), expected);
}

TEST_F(ExtensionsSession, JoinSequencingShowsBothSides) {
  Result<JoinView*> join = interactor_->OpenJoinView(
      "employee", "department", "left.title == \"MTS\"");
  ASSERT_TRUE(join.ok()) << join.status().ToString();
  ASSERT_GT((*join)->pair_count(), 0u);
  ASSERT_TRUE((*join)->Next().ok());
  auto pair = *(*join)->Current();
  EXPECT_EQ(pair.first.class_name, "employee");
  EXPECT_EQ(pair.second.class_name, "department");
  // Both side windows exist and show each side's own display.
  ASSERT_NE((*join)->left_window(), owl::kNoWindow);
  ASSERT_NE((*join)->right_window(), owl::kNoWindow);
  EXPECT_NE(ScrollTextContent((*join)->left_window()).find("name:"),
            std::string::npos);
  EXPECT_NE(ScrollTextContent((*join)->right_window()).find("location:"),
            std::string::npos);
  // Sequencing moves both.
  std::string left_before = ScrollTextContent((*join)->left_window());
  while ((*join)->Next().ok()) {
  }
  EXPECT_TRUE((*join)->Next().IsOutOfRange());
  ASSERT_TRUE((*join)->Prev().ok() || (*join)->pair_count() == 1);
}

TEST_F(ExtensionsSession, JoinValidatesPredicatePaths) {
  EXPECT_TRUE(interactor_->OpenJoinView("employee", "manager",
                                        "age == right.age")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(interactor_->OpenJoinView("employee", "ghost",
                                        "left.age == right.age")
                  .status()
                  .IsNotFound());
}

TEST_F(ExtensionsSession, CloseJoinViewDestroysWindowsAndReleasesView) {
  Result<JoinView*> join = interactor_->OpenJoinView(
      "employee", "manager", "left.age == right.age");
  ASSERT_TRUE(join.ok()) << join.status().ToString();
  ASSERT_TRUE((*join)->Next().ok());  // materialize the side windows
  owl::WindowId panel = (*join)->panel_window();
  owl::WindowId left = (*join)->left_window();
  ASSERT_NE(app_->server()->FindWindow(panel), nullptr);
  ASSERT_NE(app_->server()->FindWindow(left), nullptr);
  size_t open_before = interactor_->join_views().size();

  ASSERT_TRUE(interactor_->CloseJoinView(*join).ok());
  EXPECT_EQ(interactor_->join_views().size(), open_before - 1);
  EXPECT_EQ(app_->server()->FindWindow(panel), nullptr);
  EXPECT_EQ(app_->server()->FindWindow(left), nullptr);
  // The view is gone; a second close must not find it.
  EXPECT_TRUE(interactor_->CloseJoinView(*join).IsNotFound());
  EXPECT_TRUE(interactor_->CloseJoinView(nullptr).IsNotFound());
}

TEST_F(ExtensionsSession, EmptyJoinIsUsable) {
  Result<JoinView*> join = interactor_->OpenJoinView(
      "employee", "manager", "left.age == -1");
  ASSERT_TRUE(join.ok());
  EXPECT_EQ((*join)->pair_count(), 0u);
  EXPECT_TRUE((*join)->Next().IsOutOfRange());
  EXPECT_FALSE((*join)->has_current());
}

TEST_F(ExtensionsSession, JoinPanelButtonsWork) {
  Result<JoinView*> join = interactor_->OpenJoinView(
      "employee", "department", "left.title == \"MTS\"");
  ASSERT_TRUE(join.ok());
  ASSERT_TRUE(
      app_->server()->ClickWidget((*join)->panel_window(), "next").ok());
  EXPECT_TRUE((*join)->has_current());
  ASSERT_TRUE(
      app_->server()->ClickWidget((*join)->panel_window(), "reset").ok());
  EXPECT_FALSE((*join)->has_current());
}

// --- Privileged (debug) mode ---------------------------------------------------

TEST_F(ExtensionsSession, PrivilegedModeShowsPrivateMembers) {
  // gadget has no registered display modules -> synthesized display.
  ASSERT_TRUE(db_->DefineSchema(R"(
class vault {
public:
  string label;
private:
  string combination;
};
)")
                  .ok());
  ASSERT_TRUE(db_->CreateObject(
                     "vault",
                     odb::Value::Struct(
                         {{"label", odb::Value::String("v1")},
                          {"combination", odb::Value::String("1234")}}))
                  .ok());
  BrowseNode* node = *interactor_->OpenObjectSet("vault");
  ASSERT_TRUE(node->Next().ok());
  ASSERT_TRUE(node->ToggleFormat("text").ok());
  std::string text = ScrollTextContent(node->DisplayWindow("text"));
  EXPECT_EQ(text.find("combination"), std::string::npos)
      << "encapsulation must hide private members by default";
  interactor_->set_privileged(true);
  EXPECT_TRUE(interactor_->privileged());
  text = ScrollTextContent(node->DisplayWindow("text"));
  EXPECT_NE(text.find("combination"), std::string::npos)
      << "privileged mode selectively violates encapsulation";
  interactor_->set_privileged(false);
  text = ScrollTextContent(node->DisplayWindow("text"));
  EXPECT_EQ(text.find("combination"), std::string::npos);
}

}  // namespace
}  // namespace ode::view

namespace ode::odb {
namespace {

// --- Integrity checker ------------------------------------------------------------

class IntegrityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::move(*Database::CreateInMemory("t"));
    ASSERT_TRUE(db_->DefineSchema(R"(
class dept { public: string name; };
class emp {
public:
  string name;
  dept* d;
  set<emp*> peers;
};
)")
                    .ok());
    dept_ = *db_->CreateObject(
        "dept", Value::Struct({{"name", Value::String("research")}}));
    emp_ = *db_->CreateObject(
        "emp", Value::Struct({{"name", Value::String("amy")},
                              {"d", Value::Ref(dept_, "dept")},
                              {"peers", Value::Set({})}}));
  }

  std::unique_ptr<Database> db_;
  Oid dept_;
  Oid emp_;
};

TEST_F(IntegrityTest, CleanDatabaseHasNoIssues) {
  EXPECT_TRUE(CheckIntegrity(db_.get())->empty());
}

TEST_F(IntegrityTest, DanglingReferenceDetected) {
  ASSERT_TRUE(db_->DeleteObject(dept_).ok());
  std::vector<IntegrityIssue> issues = *CheckIntegrity(db_.get());
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].kind, IntegrityIssue::Kind::kDanglingReference);
  EXPECT_EQ(issues[0].holder, emp_);
  EXPECT_EQ(issues[0].member, "d");
  EXPECT_EQ(issues[0].target, dept_);
  EXPECT_NE(issues[0].ToString().find("dangling"), std::string::npos);
}

TEST_F(IntegrityTest, DanglingRefInsideSetDetected) {
  Oid other = *db_->CreateObject(
      "emp", Value::Struct({{"name", Value::String("bob")},
                            {"d", Value::Ref(dept_, "dept")},
                            {"peers", Value::Set({})}}));
  ObjectBuffer amy = *db_->GetObject(emp_);
  amy.value.FindMutableField("peers")->mutable_elements().push_back(
      Value::Ref(other, "emp"));
  ASSERT_TRUE(db_->UpdateObject(emp_, amy.value).ok());
  ASSERT_TRUE(db_->DeleteObject(other).ok());
  std::vector<IntegrityIssue> issues = *CheckIntegrity(db_.get());
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].member, "peers[0]");
}

TEST_F(IntegrityTest, NullReferencesAreFine) {
  ObjectBuffer amy = *db_->GetObject(emp_);
  *amy.value.FindMutableField("d") = Value::Ref(Oid::Null(), "dept");
  ASSERT_TRUE(db_->UpdateObject(emp_, amy.value).ok());
  EXPECT_TRUE(CheckIntegrity(db_.get())->empty());
}

TEST_F(IntegrityTest, LabDatabaseIsClean) {
  auto lab = std::move(*Database::CreateInMemory("lab"));
  ASSERT_TRUE(BuildLabDatabase(lab.get()).ok());
  EXPECT_TRUE(CheckIntegrity(lab.get())->empty());
}

}  // namespace
}  // namespace ode::odb
