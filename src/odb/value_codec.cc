#include "odb/value_codec.h"

#include <algorithm>

#include "common/coding.h"

namespace ode::odb {

namespace {
constexpr int kMaxDepth = 64;  // guards against corrupt deeply-nested input

/// Clamp for container-count `reserve()` calls: a decoded count is
/// untrusted input, but every field/element costs at least one input
/// byte, so the bytes left in the decoder bound any count a valid
/// buffer can deliver. A forged count (e.g. varint 2^60 followed by a
/// torn buffer) then reserves at most the input size instead of
/// throwing `length_error`/`bad_alloc` before the per-item reads fail.
size_t ClampReserve(uint64_t count, const Decoder& decoder) {
  return static_cast<size_t>(
      std::min<uint64_t>(count, decoder.remaining().size()));
}
}  // namespace

void EncodeValue(const Value& value, std::string* dst) {
  dst->push_back(static_cast<char>(value.kind()));
  switch (value.kind()) {
    case ValueKind::kNull:
      break;
    case ValueKind::kBool:
      dst->push_back(value.AsBool() ? 1 : 0);
      break;
    case ValueKind::kInt: {
      // Zigzag so negative ints stay compact.
      auto v = static_cast<uint64_t>(value.AsInt());
      uint64_t zz = (v << 1) ^ static_cast<uint64_t>(value.AsInt() >> 63);
      PutVarint64(dst, zz);
      break;
    }
    case ValueKind::kReal:
      PutDouble(dst, value.AsReal());
      break;
    case ValueKind::kString:
    case ValueKind::kBlob:
      PutLengthPrefixed(dst, value.AsString());
      break;
    case ValueKind::kRef:
      PutVarint32(dst, value.AsRef().cluster);
      PutVarint64(dst, value.AsRef().local);
      PutLengthPrefixed(dst, value.RefClass());
      break;
    case ValueKind::kStruct: {
      PutVarint64(dst, value.fields().size());
      for (const Value::Field& f : value.fields()) {
        PutLengthPrefixed(dst, f.name);
        EncodeValue(f.value, dst);
      }
      break;
    }
    case ValueKind::kArray:
    case ValueKind::kSet: {
      PutVarint64(dst, value.elements().size());
      for (const Value& e : value.elements()) EncodeValue(e, dst);
      break;
    }
  }
}

std::string EncodeValueToString(const Value& value) {
  std::string out;
  EncodeValue(value, &out);
  return out;
}

namespace {

Result<Value> DecodeValueImpl(Decoder* decoder, int depth) {
  if (depth > kMaxDepth) {
    return Status::Corruption("value nesting exceeds limit");
  }
  std::string_view tag_bytes;
  ODE_RETURN_IF_ERROR(decoder->GetRaw(1, &tag_bytes));
  auto kind = static_cast<ValueKind>(static_cast<uint8_t>(tag_bytes[0]));
  switch (kind) {
    case ValueKind::kNull:
      return Value::Null();
    case ValueKind::kBool: {
      std::string_view b;
      ODE_RETURN_IF_ERROR(decoder->GetRaw(1, &b));
      return Value::Bool(b[0] != 0);
    }
    case ValueKind::kInt: {
      uint64_t zz = 0;
      ODE_RETURN_IF_ERROR(decoder->GetVarint64(&zz));
      auto v = static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
      return Value::Int(v);
    }
    case ValueKind::kReal: {
      double d = 0;
      ODE_RETURN_IF_ERROR(decoder->GetDouble(&d));
      return Value::Real(d);
    }
    case ValueKind::kString:
    case ValueKind::kBlob: {
      std::string_view s;
      ODE_RETURN_IF_ERROR(decoder->GetLengthPrefixed(&s));
      return kind == ValueKind::kString ? Value::String(std::string(s))
                                        : Value::Blob(std::string(s));
    }
    case ValueKind::kRef: {
      uint32_t cluster = 0;
      uint64_t local = 0;
      std::string_view cls;
      ODE_RETURN_IF_ERROR(decoder->GetVarint32(&cluster));
      ODE_RETURN_IF_ERROR(decoder->GetVarint64(&local));
      ODE_RETURN_IF_ERROR(decoder->GetLengthPrefixed(&cls));
      return Value::Ref(Oid{cluster, local}, std::string(cls));
    }
    case ValueKind::kStruct: {
      uint64_t n = 0;
      ODE_RETURN_IF_ERROR(decoder->GetVarint64(&n));
      std::vector<Value::Field> fields;
      fields.reserve(ClampReserve(n, *decoder));
      for (uint64_t i = 0; i < n; ++i) {
        std::string_view name;
        ODE_RETURN_IF_ERROR(decoder->GetLengthPrefixed(&name));
        ODE_ASSIGN_OR_RETURN(Value v, DecodeValueImpl(decoder, depth + 1));
        fields.push_back({std::string(name), std::move(v)});
      }
      return Value::Struct(std::move(fields));
    }
    case ValueKind::kArray:
    case ValueKind::kSet: {
      uint64_t n = 0;
      ODE_RETURN_IF_ERROR(decoder->GetVarint64(&n));
      std::vector<Value> elements;
      elements.reserve(ClampReserve(n, *decoder));
      for (uint64_t i = 0; i < n; ++i) {
        ODE_ASSIGN_OR_RETURN(Value v, DecodeValueImpl(decoder, depth + 1));
        elements.push_back(std::move(v));
      }
      return kind == ValueKind::kArray ? Value::Array(std::move(elements))
                                       : Value::Set(std::move(elements));
    }
  }
  return Status::Corruption("unknown value tag " +
                            std::to_string(static_cast<int>(kind)));
}

Status SkipValueImpl(Decoder* decoder, int depth) {
  if (depth > kMaxDepth) {
    return Status::Corruption("value nesting exceeds limit");
  }
  std::string_view tag_bytes;
  ODE_RETURN_IF_ERROR(decoder->GetRaw(1, &tag_bytes));
  auto kind = static_cast<ValueKind>(static_cast<uint8_t>(tag_bytes[0]));
  switch (kind) {
    case ValueKind::kNull:
      return Status::OK();
    case ValueKind::kBool: {
      std::string_view b;
      return decoder->GetRaw(1, &b);
    }
    case ValueKind::kInt: {
      uint64_t zz = 0;
      return decoder->GetVarint64(&zz);
    }
    case ValueKind::kReal: {
      double d = 0;
      return decoder->GetDouble(&d);
    }
    case ValueKind::kString:
    case ValueKind::kBlob: {
      std::string_view s;
      return decoder->GetLengthPrefixed(&s);
    }
    case ValueKind::kRef: {
      uint32_t cluster = 0;
      uint64_t local = 0;
      std::string_view cls;
      ODE_RETURN_IF_ERROR(decoder->GetVarint32(&cluster));
      ODE_RETURN_IF_ERROR(decoder->GetVarint64(&local));
      return decoder->GetLengthPrefixed(&cls);
    }
    case ValueKind::kStruct: {
      uint64_t n = 0;
      ODE_RETURN_IF_ERROR(decoder->GetVarint64(&n));
      for (uint64_t i = 0; i < n; ++i) {
        std::string_view name;
        ODE_RETURN_IF_ERROR(decoder->GetLengthPrefixed(&name));
        ODE_RETURN_IF_ERROR(SkipValueImpl(decoder, depth + 1));
      }
      return Status::OK();
    }
    case ValueKind::kArray:
    case ValueKind::kSet: {
      uint64_t n = 0;
      ODE_RETURN_IF_ERROR(decoder->GetVarint64(&n));
      for (uint64_t i = 0; i < n; ++i) {
        ODE_RETURN_IF_ERROR(SkipValueImpl(decoder, depth + 1));
      }
      return Status::OK();
    }
  }
  return Status::Corruption("unknown value tag " +
                            std::to_string(static_cast<int>(kind)));
}

}  // namespace

Status SkipValue(Decoder* decoder) { return SkipValueImpl(decoder, 0); }

Result<Value> DecodeValue(Decoder* decoder) {
  return DecodeValueImpl(decoder, 0);
}

Result<Value> DecodeValue(std::string_view bytes) {
  Decoder decoder(bytes);
  ODE_ASSIGN_OR_RETURN(Value v, DecodeValueImpl(&decoder, 0));
  if (!decoder.empty()) {
    return Status::Corruption("trailing bytes after value");
  }
  return v;
}

}  // namespace ode::odb
