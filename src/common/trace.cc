#include "common/trace.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <vector>

#include "common/thread_annotations.h"
#include "common/threading.h"

namespace ode::obs {

std::atomic<bool> Tracing::enabled_{false};

namespace {

/// Events retained per thread before the ring wraps (oldest dropped).
constexpr size_t kRingCapacity = 8192;

/// Open spans tracked per thread; deeper nesting is still timed but
/// invisible to the watchdog (bounded so crash dumps stay allocation-
/// free).
constexpr size_t kMaxOpenSpans = 64;

/// One thread's span storage. The owning thread appends; an exporting
/// thread reads — both under `mu`, which the owner almost always takes
/// uncontended.
struct ThreadBuffer {
  Mutex mu{LockRank::kTraceBuffer};
  std::vector<TraceEvent> ring ODE_GUARDED_BY(mu);
  size_t next ODE_GUARDED_BY(mu) = 0;  ///< ring slot for the next event
  bool wrapped ODE_GUARDED_BY(mu) = false;  ///< holds kRingCapacity events
  uint64_t dropped ODE_GUARDED_BY(mu) = 0;
  /// Stack of spans whose TraceSpan is still in scope.
  OpenSpanInfo open[kMaxOpenSpans] ODE_GUARDED_BY(mu);
  size_t open_count ODE_GUARDED_BY(mu) = 0;
  /// Updated every time the owning thread opens or closes a span; the
  /// watchdog's progress signal.
  uint64_t last_activity_ns ODE_GUARDED_BY(mu) = 0;
  /// Immutable after the registration in LocalBuffer().
  uint32_t thread_id = 0;
};

struct BufferDirectory {
  Mutex mu{LockRank::kTraceDirectory};
  std::vector<std::shared_ptr<ThreadBuffer>> buffers ODE_GUARDED_BY(mu);
};

BufferDirectory& Directory() {
  // Leaked: exiting threads' buffers stay exportable at shutdown.
  static BufferDirectory* directory = new BufferDirectory();
  return *directory;
}

ThreadBuffer& LocalBuffer() {
  // The shared_ptr keeps the buffer alive in the directory after the
  // thread exits, so late exports still see its spans.
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    b->thread_id = CurrentThreadId();
    BufferDirectory& directory = Directory();
    MutexLock lock(directory.mu);
    directory.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

thread_local uint32_t tls_span_depth = 0;
thread_local TraceContext tls_context;

/// Span/trace id allocator. Ids are process-unique and never zero
/// (zero means "no id"), shared between trace and span ids.
std::atomic<uint64_t> next_causal_id{1};

uint64_t NextCausalId() {
  return next_causal_id.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::shared_ptr<ThreadBuffer>> AllBuffers() {
  BufferDirectory& directory = Directory();
  MutexLock lock(directory.mu);
  return directory.buffers;
}

std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

uint64_t Tracing::NowNanos() {
  auto elapsed = std::chrono::steady_clock::now() - ProcessEpoch();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

TraceContext CurrentTraceContext() { return tls_context; }

TraceContextScope::TraceContextScope(TraceContext ctx) : saved_(tls_context) {
  tls_context = ctx;
}

TraceContextScope::~TraceContextScope() { tls_context = saved_; }

TraceContext Tracing::NewRootContext() {
  TraceContext ctx;
  ctx.trace_id = NextCausalId();
  ctx.span_id = NextCausalId();
  return ctx;
}

void Tracing::Record(const char* name, uint64_t start_ns,
                     uint64_t duration_ns, uint32_t depth, uint64_t trace_id,
                     uint64_t span_id, uint64_t parent_id) {
  TraceEvent event;
  event.name = name;
  event.start_ns = start_ns;
  event.duration_ns = duration_ns;
  event.thread_id = CurrentThreadId();
  event.depth = depth;
  event.trace_id = trace_id;
  event.span_id = span_id;
  event.parent_id = parent_id;
  ThreadBuffer& buffer = LocalBuffer();
  MutexLock lock(buffer.mu);
  buffer.last_activity_ns = NowNanos();
  if (buffer.ring.size() < kRingCapacity) {
    buffer.ring.push_back(event);
    buffer.next = buffer.ring.size() % kRingCapacity;
  } else {
    buffer.ring[buffer.next] = event;
    buffer.next = (buffer.next + 1) % kRingCapacity;
    buffer.wrapped = true;
    ++buffer.dropped;
  }
}

size_t Tracing::CapturedCount() {
  size_t total = 0;
  for (const auto& buffer : AllBuffers()) {
    MutexLock lock(buffer->mu);
    total += buffer->ring.size();
  }
  return total;
}

uint64_t Tracing::DroppedCount() {
  uint64_t total = 0;
  for (const auto& buffer : AllBuffers()) {
    MutexLock lock(buffer->mu);
    total += buffer->dropped;
  }
  return total;
}

void Tracing::Clear() {
  for (const auto& buffer : AllBuffers()) {
    MutexLock lock(buffer->mu);
    buffer->ring.clear();
    buffer->next = 0;
    buffer->wrapped = false;
    buffer->dropped = 0;
  }
}

std::vector<OpenSpanInfo> Tracing::OpenSpans() {
  std::vector<OpenSpanInfo> out;
  for (const auto& buffer : AllBuffers()) {
    MutexLock lock(buffer->mu);
    for (size_t i = 0; i < buffer->open_count; ++i) {
      OpenSpanInfo info = buffer->open[i];
      info.thread_last_activity_ns = buffer->last_activity_ns;
      out.push_back(info);
    }
  }
  return out;
}

void Tracing::DumpOpenSpans(int fd) {
  // Async-signal context: no allocation, try-lock only (a buffer whose
  // owner crashed mid-append is skipped rather than deadlocked on).
  BufferDirectory& directory = Directory();
  if (!directory.mu.TryLock()) return;
  char line[256];
  uint64_t now = NowNanos();
  for (const auto& buffer : directory.buffers) {
    if (!buffer->mu.TryLock()) continue;
    for (size_t i = 0; i < buffer->open_count; ++i) {
      const OpenSpanInfo& span = buffer->open[i];
      int n = std::snprintf(
          line, sizeof(line),
          "  open span %-24s thread=%u age_ns=%llu trace=%llu span=%llu "
          "parent=%llu\n",
          span.name, buffer->thread_id,
          static_cast<unsigned long long>(now - span.start_ns),
          static_cast<unsigned long long>(span.trace_id),
          static_cast<unsigned long long>(span.span_id),
          static_cast<unsigned long long>(span.parent_id));
      if (n > 0) {
        ssize_t ignored = ::write(fd, line, static_cast<size_t>(n));
        (void)ignored;
      }
    }
    buffer->mu.Unlock();
  }
  directory.mu.Unlock();
}

std::vector<TraceEvent> Tracing::SnapshotEvents() {
  std::vector<TraceEvent> out;
  for (const auto& buffer : AllBuffers()) {
    MutexLock lock(buffer->mu);
    out.insert(out.end(), buffer->ring.begin(), buffer->ring.end());
  }
  return out;
}

namespace {

/// Span names are compile-time literals by convention, but the export
/// must stay valid JSON even when one carries a quote, backslash, or
/// control byte.
void StreamJsonEscaped(std::ostringstream& os, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    unsigned char c = static_cast<unsigned char>(*p);
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << *p;
        }
    }
  }
}

}  // namespace

std::string Tracing::ExportChromeJson() {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& buffer : AllBuffers()) {
    MutexLock lock(buffer->mu);
    for (const TraceEvent& event : buffer->ring) {
      if (!first) os << ",";
      first = false;
      // Timestamps are microseconds (the trace_event unit); keep
      // nanosecond precision with three decimals.
      char ts[32], dur[32];
      std::snprintf(ts, sizeof(ts), "%llu.%03llu",
                    static_cast<unsigned long long>(event.start_ns / 1000),
                    static_cast<unsigned long long>(event.start_ns % 1000));
      std::snprintf(dur, sizeof(dur), "%llu.%03llu",
                    static_cast<unsigned long long>(event.duration_ns / 1000),
                    static_cast<unsigned long long>(event.duration_ns % 1000));
      os << "{\"name\":\"";
      StreamJsonEscaped(os, event.name);
      os << "\",\"cat\":\"ode\""
         << ",\"ph\":\"X\",\"pid\":1,\"tid\":" << event.thread_id
         << ",\"ts\":" << ts << ",\"dur\":" << dur
         << ",\"args\":{\"depth\":" << event.depth
         << ",\"trace\":" << event.trace_id << ",\"span\":" << event.span_id
         << ",\"parent\":" << event.parent_id << "}}";
    }
  }
  os << "]}";
  return os.str();
}

TraceSpan::TraceSpan(const char* name) {
  if (!Tracing::enabled()) return;
  name_ = name;
  start_ns_ = Tracing::NowNanos();
  depth_ = tls_span_depth++;
  parent_ = tls_context;
  trace_id_ = parent_.valid() ? parent_.trace_id : NextCausalId();
  span_id_ = NextCausalId();
  tls_context = TraceContext{trace_id_, span_id_};
  ThreadBuffer& buffer = LocalBuffer();
  MutexLock lock(buffer.mu);
  buffer.last_activity_ns = start_ns_;
  if (buffer.open_count < kMaxOpenSpans) {
    OpenSpanInfo& info = buffer.open[buffer.open_count++];
    info.name = name_;
    info.start_ns = start_ns_;
    info.trace_id = trace_id_;
    info.span_id = span_id_;
    info.parent_id = parent_.span_id;
    info.thread_id = buffer.thread_id;
  }
}

TraceSpan::~TraceSpan() {
  if (name_ == nullptr) return;
  --tls_span_depth;
  tls_context = parent_;
  {
    ThreadBuffer& buffer = LocalBuffer();
    MutexLock lock(buffer.mu);
    // Pop this span if it is on the open stack (spans close LIFO, but
    // the stack is bounded, so deep spans may never have been pushed).
    if (buffer.open_count > 0 &&
        buffer.open[buffer.open_count - 1].span_id == span_id_) {
      --buffer.open_count;
    }
  }
  Tracing::Record(name_, start_ns_, Tracing::NowNanos() - start_ns_, depth_,
                  trace_id_, span_id_, parent_.span_id);
}

}  // namespace ode::obs
