// Ablation: the DAG placement design choices DESIGN.md calls out —
// ordering heuristic (none / barycenter / median), sweep count, and
// layering method — measured on random DAGs for both speed and
// crossing quality.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "dag/layout.h"

namespace ode::bench {
namespace {

dag::Digraph RandomDag(uint64_t seed, int nodes, int max_parents) {
  uint64_t state = seed;
  auto next = [&]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  dag::Digraph graph;
  for (int i = 0; i < nodes; ++i) {
    (void)graph.EnsureNode("n" + std::to_string(i));
  }
  for (int i = 1; i < nodes; ++i) {
    int parents = 1 + static_cast<int>(next() % max_parents);
    for (int p = 0; p < parents; ++p) {
      (void)graph.AddEdge(
          static_cast<int>(next() % static_cast<uint64_t>(i)), i);
    }
  }
  return graph;
}

void BM_OrderingMethods(benchmark::State& state) {
  auto method = static_cast<dag::OrderingMethod>(state.range(0));
  int nodes = static_cast<int>(state.range(1));
  dag::Digraph graph = RandomDag(42, nodes, 3);
  dag::LayoutOptions options;
  options.ordering = method;
  uint64_t crossings = 0;
  for (auto _ : state) {
    dag::DagLayout layout =
        ValueOrDie(dag::LayoutDag(graph, options), "layout");
    crossings = layout.crossings;
    benchmark::DoNotOptimize(layout);
  }
  switch (method) {
    case dag::OrderingMethod::kNone:
      state.SetLabel("no crossing minimization");
      break;
    case dag::OrderingMethod::kBarycenter:
      state.SetLabel("barycenter");
      break;
    case dag::OrderingMethod::kMedian:
      state.SetLabel("median");
      break;
  }
  state.counters["nodes"] = nodes;
  state.counters["crossings"] = static_cast<double>(crossings);
}
BENCHMARK(BM_OrderingMethods)
    ->Args({0, 100})
    ->Args({1, 100})
    ->Args({2, 100})
    ->Args({0, 500})
    ->Args({1, 500})
    ->Args({2, 500});

void BM_SweepCount(benchmark::State& state) {
  int sweeps = static_cast<int>(state.range(0));
  dag::Digraph graph = RandomDag(7, 300, 3);
  dag::LayoutOptions options;
  options.sweeps = sweeps;
  uint64_t crossings = 0;
  for (auto _ : state) {
    dag::DagLayout layout =
        ValueOrDie(dag::LayoutDag(graph, options), "layout");
    crossings = layout.crossings;
    benchmark::DoNotOptimize(layout);
  }
  state.counters["sweeps"] = sweeps;
  state.counters["crossings"] = static_cast<double>(crossings);
}
BENCHMARK(BM_SweepCount)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_LayeringMethods(benchmark::State& state) {
  bool coffman_graham = state.range(0) == 1;
  dag::Digraph graph = RandomDag(99, 400, 3);
  dag::LayoutOptions options;
  options.layering = coffman_graham ? dag::LayeringMethod::kCoffmanGraham
                                    : dag::LayeringMethod::kLongestPath;
  int height = 0;
  int width = 0;
  for (auto _ : state) {
    dag::DagLayout layout =
        ValueOrDie(dag::LayoutDag(graph, options), "layout");
    height = static_cast<int>(layout.layers.size());
    width = layout.width;
    benchmark::DoNotOptimize(layout);
  }
  state.SetLabel(coffman_graham ? "coffman-graham" : "longest-path");
  state.counters["layers"] = height;
  state.counters["width_cells"] = width;
}
BENCHMARK(BM_LayeringMethods)->Arg(0)->Arg(1);

void BM_CrossingCounting(benchmark::State& state) {
  int edges = static_cast<int>(state.range(0));
  uint64_t s = 5;
  auto next = [&]() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s >> 33;
  };
  std::vector<std::pair<int, int>> bilayer;
  for (int i = 0; i < edges; ++i) {
    bilayer.emplace_back(static_cast<int>(next() % 1000),
                         static_cast<int>(next() % 1000));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dag::CountBilayerCrossings(bilayer));
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_CrossingCounting)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace ode::bench

ODE_BENCH_MAIN();
