#ifndef ODEVIEW_DAG_DIGRAPH_H_
#define ODEVIEW_DAG_DIGRAPH_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ode::dag {

/// Node handle within a `Digraph` (dense, 0-based).
using NodeId = int;

/// A simple labeled directed graph — the input to the DAG placement
/// algorithm that draws the class-inheritance relationship (edges run
/// base -> derived).
class Digraph {
 public:
  Digraph() = default;

  /// Adds a node; duplicate labels are rejected.
  Result<NodeId> AddNode(std::string label);

  /// Adds the node if absent, otherwise returns the existing id.
  NodeId EnsureNode(std::string_view label);

  Result<NodeId> FindNode(std::string_view label) const;

  /// Adds a directed edge; self-loops and duplicates are rejected.
  Status AddEdge(NodeId from, NodeId to);

  int node_count() const { return static_cast<int>(labels_.size()); }
  int edge_count() const { return edge_count_; }

  const std::string& label(NodeId id) const { return labels_[id]; }
  const std::vector<NodeId>& OutNeighbors(NodeId id) const {
    return out_[id];
  }
  const std::vector<NodeId>& InNeighbors(NodeId id) const { return in_[id]; }

  /// All edges as (from, to) pairs, insertion order.
  const std::vector<std::pair<NodeId, NodeId>>& edges() const {
    return edges_;
  }

  bool HasEdge(NodeId from, NodeId to) const;

  /// True iff the graph has no directed cycle.
  bool IsAcyclic() const;

  /// Builds a graph from labeled edges (nodes created on demand).
  static Digraph FromEdges(
      const std::vector<std::pair<std::string, std::string>>& edges);

 private:
  std::vector<std::string> labels_;
  std::unordered_map<std::string, NodeId> index_;
  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
  int edge_count_ = 0;
};

}  // namespace ode::dag

#endif  // ODEVIEW_DAG_DIGRAPH_H_
