file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_reference_chase.dir/bench_fig07_reference_chase.cc.o"
  "CMakeFiles/bench_fig07_reference_chase.dir/bench_fig07_reference_chase.cc.o.d"
  "bench_fig07_reference_chase"
  "bench_fig07_reference_chase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_reference_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
