# Empty compiler generated dependencies file for ode_common.
# This may be replaced when dependencies are built.
