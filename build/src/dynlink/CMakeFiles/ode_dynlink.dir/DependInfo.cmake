
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dynlink/lab_modules.cc" "src/dynlink/CMakeFiles/ode_dynlink.dir/lab_modules.cc.o" "gcc" "src/dynlink/CMakeFiles/ode_dynlink.dir/lab_modules.cc.o.d"
  "/root/repo/src/dynlink/linker.cc" "src/dynlink/CMakeFiles/ode_dynlink.dir/linker.cc.o" "gcc" "src/dynlink/CMakeFiles/ode_dynlink.dir/linker.cc.o.d"
  "/root/repo/src/dynlink/repository.cc" "src/dynlink/CMakeFiles/ode_dynlink.dir/repository.cc.o" "gcc" "src/dynlink/CMakeFiles/ode_dynlink.dir/repository.cc.o.d"
  "/root/repo/src/dynlink/synthesized.cc" "src/dynlink/CMakeFiles/ode_dynlink.dir/synthesized.cc.o" "gcc" "src/dynlink/CMakeFiles/ode_dynlink.dir/synthesized.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ode_common.dir/DependInfo.cmake"
  "/root/repo/build/src/odb/CMakeFiles/ode_odb.dir/DependInfo.cmake"
  "/root/repo/build/src/owl/CMakeFiles/ode_owl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
