file(REMOVE_RECURSE
  "libode_common.a"
)
