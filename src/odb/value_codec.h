#ifndef ODEVIEW_ODB_VALUE_CODEC_H_
#define ODEVIEW_ODB_VALUE_CODEC_H_

#include <string>
#include <string_view>

#include "common/coding.h"
#include "common/result.h"
#include "odb/value.h"

namespace ode::odb {

/// Appends the storage encoding of `value` to `dst`.
///
/// The format is a compact tagged encoding (tag byte per node, varint
/// lengths, little-endian scalars). `DecodeValue(EncodeValue(v)) == v`
/// for all values; this invariant is property-tested.
void EncodeValue(const Value& value, std::string* dst);

/// Convenience wrapper returning the encoded bytes.
std::string EncodeValueToString(const Value& value);

/// Decodes one value from the front of `*decoder`.
Result<Value> DecodeValue(Decoder* decoder);

/// Decodes a buffer that must contain exactly one value.
Result<Value> DecodeValue(std::string_view bytes);

/// Advances `*decoder` past one encoded value without materializing
/// it. Strings, blobs, and scalars skip in O(1); containers walk their
/// children's framing only. This is the primitive behind projection
/// pushdown: a batched scan skips the bytes of attributes outside the
/// displaylist instead of decoding them.
Status SkipValue(Decoder* decoder);

}  // namespace ode::odb

#endif  // ODEVIEW_ODB_VALUE_CODEC_H_
