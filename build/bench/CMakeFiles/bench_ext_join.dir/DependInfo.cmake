
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_join.cc" "bench/CMakeFiles/bench_ext_join.dir/bench_ext_join.cc.o" "gcc" "bench/CMakeFiles/bench_ext_join.dir/bench_ext_join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/odeview/CMakeFiles/ode_odeview.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/ode_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/dynlink/CMakeFiles/ode_dynlink.dir/DependInfo.cmake"
  "/root/repo/build/src/odb/CMakeFiles/ode_odb.dir/DependInfo.cmake"
  "/root/repo/build/src/owl/CMakeFiles/ode_owl.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ode_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
