file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_class_def.dir/bench_fig04_class_def.cc.o"
  "CMakeFiles/bench_fig04_class_def.dir/bench_fig04_class_def.cc.o.d"
  "bench_fig04_class_def"
  "bench_fig04_class_def.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_class_def.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
