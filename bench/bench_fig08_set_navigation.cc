// Figure 8: browsing a set-valued member (department -> employees):
// an object-set window over the references, with sequencing.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace ode::bench {
namespace {

LabSession SessionWithDeptOf(int employees) {
  odb::LabDbConfig config;
  config.employees = employees;
  config.departments = 1;  // everyone in one department
  config.managers = 1;
  return LabSession::Create(config);
}

void BM_OpenReferenceSetWindow(benchmark::State& state) {
  int dept_size = static_cast<int>(state.range(0));
  LabSession session = SessionWithDeptOf(dept_size);
  view::BrowseNode* node =
      ValueOrDie(session.interactor->OpenObjectSet("department"), "set");
  CheckOk(node->Next(), "next");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ValueOrDie(node->FollowReferenceSet("employees"), "follow"));
    state.PauseTiming();
    CheckOk(session.interactor->CloseObjectSet("department"), "close");
    node = ValueOrDie(session.interactor->OpenObjectSet("department"),
                      "reopen");
    CheckOk(node->Next(), "next");
    state.ResumeTiming();
  }
  state.counters["set_size"] = dept_size;
}
BENCHMARK(BM_OpenReferenceSetWindow)->Arg(10)->Arg(100)->Arg(1000);

void BM_SequenceThroughColleagues(benchmark::State& state) {
  int dept_size = static_cast<int>(state.range(0));
  LabSession session = SessionWithDeptOf(dept_size);
  view::BrowseNode* dept =
      ValueOrDie(session.interactor->OpenObjectSet("department"), "set");
  CheckOk(dept->Next(), "next");
  view::BrowseNode* colleagues =
      ValueOrDie(dept->FollowReferenceSet("employees"), "follow");
  int walked = 0;
  for (auto _ : state) {
    if (!colleagues->Next().ok()) {
      CheckOk(colleagues->Reset(), "reset");
      CheckOk(colleagues->Next().ok() ? Status::OK()
                                      : Status::Internal("empty"),
              "restart");
    }
    ++walked;
  }
  benchmark::DoNotOptimize(walked);
  state.counters["set_size"] = dept_size;
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SequenceThroughColleagues)->Arg(10)->Arg(100)->Arg(1000);

void BM_SetResolutionOnParentStep(benchmark::State& state) {
  // When the parent department changes, the employees set window must
  // re-resolve the whole target list.
  odb::LabDbConfig config;
  config.employees = static_cast<int>(state.range(0));
  config.departments = 4;
  LabSession session = LabSession::Create(config);
  view::BrowseNode* dept =
      ValueOrDie(session.interactor->OpenObjectSet("department"), "set");
  CheckOk(dept->Next(), "next");
  (void)ValueOrDie(dept->FollowReferenceSet("employees"), "follow");
  for (auto _ : state) {
    if (!dept->Next().ok()) CheckOk(dept->Reset(), "reset");
  }
  state.counters["employees"] = config.employees;
}
BENCHMARK(BM_SetResolutionOnParentStep)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace ode::bench

ODE_BENCH_MAIN();
