#ifndef ODEVIEW_ODEVIEW_DISPLAY_STATE_H_
#define ODEVIEW_ODEVIEW_DISPLAY_STATE_H_

#include <map>
#include <string>
#include <vector>

namespace ode::view {

/// The display state of one cluster: which display formats are open
/// and the current projection.
///
/// Paper §3.2: "OdeView remembers the display state of a cluster and
/// will display other objects in the cluster in the same display state
/// (until the user changes the display state, e.g., by clicking the
/// text button to close the text display)."
struct ClusterDisplayState {
  /// Open display formats, in the order they were opened.
  std::vector<std::string> open_formats;
  /// Projection bit vector over the class's displaylist; empty = no
  /// projection (designer default).
  std::vector<bool> projection_mask;

  bool IsOpen(std::string_view format) const;
  /// Returns the new open/closed state of `format`.
  bool Toggle(const std::string& format);
};

/// Registry of display states, keyed by (database, class).
class DisplayStateRegistry {
 public:
  /// Mutable state for a cluster (created on first access).
  ClusterDisplayState* StateFor(const std::string& db_name,
                                const std::string& class_name);
  const ClusterDisplayState* FindState(const std::string& db_name,
                                       const std::string& class_name) const;

  void Clear() { states_.clear(); }
  size_t size() const { return states_.size(); }

 private:
  std::map<std::pair<std::string, std::string>, ClusterDisplayState>
      states_;
};

/// Builds a projection mask over `displaylist` selecting exactly
/// `chosen` (unknown names are ignored). An empty `chosen` yields the
/// all-false mask; use the ALL button semantics (empty mask) to lift
/// projection instead.
std::vector<bool> BuildProjectionMask(
    const std::vector<std::string>& displaylist,
    const std::vector<std::string>& chosen);

}  // namespace ode::view

#endif  // ODEVIEW_ODEVIEW_DISPLAY_STATE_H_
