#include "common/access_log.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/coding.h"
#include "common/journal.h"
#include "common/metrics.h"
#include "common/op_profile.h"
#include "common/trace.h"

namespace ode::obs {

namespace {

constexpr char kCaptureMagic[8] = {'O', 'D', 'E', 'A', 'C', 'C', '0', '1'};

enum CaptureRecordType : uint8_t {
  kCaptureClassDef = 1,
  kCaptureEvent = 2,
  kCaptureAffinity = 3,
};

Counter* RecordedCounter() {
  static Counter* c = Registry::Global().counter("obs.access.recorded");
  return c;
}
Counter* DroppedCounter() {
  static Counter* c = Registry::Global().counter("obs.access.dropped");
  return c;
}
Counter* OverwrittenCounter() {
  static Counter* c = Registry::Global().counter("obs.access.overwritten");
  return c;
}

/// Mixes a page/class key into a table probe start (splitmix-style).
uint64_t HashKey(uint64_t key) {
  key += 0x9e3779b97f4a7c15ull;
  key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ull;
  key = (key ^ (key >> 27)) * 0x94d049bb133111ebull;
  return key ^ (key >> 31);
}

uint64_t HashAffinity(uint64_t src_cluster, uint64_t src_local,
                      uint64_t dst_cluster, uint64_t dst_local) {
  uint64_t h = HashKey((src_cluster << 40) ^ src_local);
  h ^= HashKey((dst_cluster << 40) ^ dst_local) * 0x9e3779b97f4a7c15ull;
  return h;
}

void AppendJsonEscapedLabel(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      *out += c;
    }
  }
}

}  // namespace

const char* AccessOpName(AccessOp op) {
  switch (op) {
    case AccessOp::kGet:
      return "get";
    case AccessOp::kScan:
      return "scan";
    case AccessOp::kCreate:
      return "create";
    case AccessOp::kUpdate:
      return "update";
    case AccessOp::kDelete:
      return "delete";
  }
  return "unknown";
}

// --- AccessTraceWriter -------------------------------------------------

AccessTraceWriter::~AccessTraceWriter() {
  if (file_ != nullptr) (void)Close();
}

Status AccessTraceWriter::Open(const std::string& path) {
  if (file_ != nullptr) return Status::FailedPrecondition("capture open");
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IOError("cannot open capture file '" + path + "'");
  }
  buffer_.assign(kCaptureMagic, sizeof(kCaptureMagic));
  class_ids_.clear();
  next_class_id_ = 1;
  records_written_ = 0;
  return Status::OK();
}

uint32_t AccessTraceWriter::InternClass(const char* label) {
  if (label == nullptr) return 0;
  auto it = class_ids_.find(label);
  if (it != class_ids_.end()) return it->second;
  uint32_t id = next_class_id_++;
  class_ids_.emplace(label, id);
  std::string payload;
  payload.push_back(static_cast<char>(kCaptureClassDef));
  PutVarint32(&payload, id);
  PutLengthPrefixed(&payload, label);
  WriteFramed(payload);
  return id;
}

void AccessTraceWriter::WriteFramed(const std::string& payload) {
  PutFixed32(&buffer_, static_cast<uint32_t>(payload.size()));
  buffer_ += payload;
  PutFixed32(&buffer_, Crc32(payload));
  ++records_written_;
  if (buffer_.size() >= 256 * 1024) FlushBuffer();
}

void AccessTraceWriter::FlushBuffer() {
  if (file_ != nullptr && !buffer_.empty()) {
    (void)std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
  }
  buffer_.clear();
}

void AccessTraceWriter::WriteEvent(const AccessEvent& event) {
  uint32_t class_id = InternClass(event.class_label);
  std::string payload;
  payload.push_back(static_cast<char>(kCaptureEvent));
  PutVarint32(&payload, static_cast<uint32_t>(event.op));
  PutVarint64(&payload, event.cluster);
  PutVarint64(&payload, event.local);
  PutVarint64(&payload, event.page);
  PutVarint32(&payload, class_id);
  PutVarint64(&payload, event.session_id);
  PutVarint64(&payload, event.trace_id);
  PutVarint64(&payload, event.ts_ns);
  WriteFramed(payload);
}

void AccessTraceWriter::WriteAffinity(uint64_t src_cluster,
                                      uint64_t src_local,
                                      const char* src_class,
                                      uint64_t dst_cluster,
                                      uint64_t dst_local,
                                      const char* dst_class) {
  uint32_t src_id = InternClass(src_class);
  uint32_t dst_id = InternClass(dst_class);
  std::string payload;
  payload.push_back(static_cast<char>(kCaptureAffinity));
  PutVarint64(&payload, src_cluster);
  PutVarint64(&payload, src_local);
  PutVarint32(&payload, src_id);
  PutVarint64(&payload, dst_cluster);
  PutVarint64(&payload, dst_local);
  PutVarint32(&payload, dst_id);
  WriteFramed(payload);
}

Result<uint64_t> AccessTraceWriter::Close() {
  if (file_ == nullptr) return Status::FailedPrecondition("capture not open");
  FlushBuffer();
  int rc = std::fclose(file_);
  file_ = nullptr;
  uint64_t written = records_written_;
  records_written_ = 0;
  class_ids_.clear();
  if (rc != 0) return Status::IOError("capture close failed");
  return written;
}

// --- ReadAccessTrace ---------------------------------------------------

Result<AccessTrace> ReadAccessTrace(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError("cannot open capture file '" + path + "'");
  }
  std::string bytes;
  char chunk[64 * 1024];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    bytes.append(chunk, n);
  }
  std::fclose(file);
  Result<AccessTrace> trace = ParseAccessTrace(bytes);
  if (!trace.ok()) {
    return Status::Corruption("'" + path + "': " + trace.status().message());
  }
  return trace;
}

Result<AccessTrace> ParseAccessTrace(std::string_view bytes) {
  if (bytes.size() < sizeof(kCaptureMagic) ||
      std::memcmp(bytes.data(), kCaptureMagic, sizeof(kCaptureMagic)) != 0) {
    return Status::Corruption("not an access capture");
  }

  AccessTrace trace;
  std::map<uint32_t, const char*> classes;
  std::string_view rest = bytes.substr(sizeof(kCaptureMagic));
  while (!rest.empty()) {
    // Frame: fixed32 len | payload | fixed32 crc. Anything that does
    // not parse cleanly is a torn tail: stop at the last intact record.
    if (rest.size() < 4) break;
    uint32_t len = DecodeFixed32(rest.data());
    if (rest.size() < 4 + static_cast<size_t>(len) + 4) break;
    std::string_view payload = rest.substr(4, len);
    uint32_t crc = DecodeFixed32(rest.data() + 4 + len);
    if (Crc32(payload) != crc) break;
    rest.remove_prefix(4 + len + 4);

    Decoder decoder(payload);
    std::string_view type_byte;
    if (!decoder.GetRaw(1, &type_byte).ok()) break;
    switch (static_cast<uint8_t>(type_byte[0])) {
      case kCaptureClassDef: {
        uint32_t id = 0;
        std::string_view name;
        if (!decoder.GetVarint32(&id).ok() ||
            !decoder.GetLengthPrefixed(&name).ok()) {
          return Status::Corruption("malformed class-def record");
        }
        classes[id] = Journal::InternLabel(name);
        break;
      }
      case kCaptureEvent: {
        AccessTraceRecord record;
        record.kind = AccessTraceRecord::Kind::kEvent;
        uint32_t op = 0, class_id = 0;
        if (!decoder.GetVarint32(&op).ok() ||
            !decoder.GetVarint64(&record.event.cluster).ok() ||
            !decoder.GetVarint64(&record.event.local).ok() ||
            !decoder.GetVarint64(&record.event.page).ok() ||
            !decoder.GetVarint32(&class_id).ok() ||
            !decoder.GetVarint64(&record.event.session_id).ok() ||
            !decoder.GetVarint64(&record.event.trace_id).ok() ||
            !decoder.GetVarint64(&record.event.ts_ns).ok()) {
          return Status::Corruption("malformed access event record");
        }
        if (op >= kAccessOpCount) {
          return Status::Corruption("unknown access op " +
                                    std::to_string(op));
        }
        record.event.op = static_cast<AccessOp>(op);
        auto it = classes.find(class_id);
        record.event.class_label =
            it != classes.end() ? it->second : nullptr;
        trace.records.push_back(record);
        break;
      }
      case kCaptureAffinity: {
        AccessTraceRecord record;
        record.kind = AccessTraceRecord::Kind::kAffinity;
        uint32_t src_id = 0, dst_id = 0;
        if (!decoder.GetVarint64(&record.src_cluster).ok() ||
            !decoder.GetVarint64(&record.src_local).ok() ||
            !decoder.GetVarint32(&src_id).ok() ||
            !decoder.GetVarint64(&record.dst_cluster).ok() ||
            !decoder.GetVarint64(&record.dst_local).ok() ||
            !decoder.GetVarint32(&dst_id).ok()) {
          return Status::Corruption("malformed affinity record");
        }
        auto src = classes.find(src_id);
        auto dst = classes.find(dst_id);
        record.src_class = src != classes.end() ? src->second : nullptr;
        record.dst_class = dst != classes.end() ? dst->second : nullptr;
        trace.records.push_back(record);
        break;
      }
      default:
        return Status::Corruption("unknown capture record type");
    }
  }
  trace.torn_tail_bytes = rest.size();
  return trace;
}

// --- AccessLog ---------------------------------------------------------

AccessLog::AccessLog(size_t ring_capacity) {
  if (ring_capacity < 8) ring_capacity = 8;
  ring_capacity_ = std::bit_ceil(ring_capacity);
  ring_mask_ = ring_capacity_ - 1;
  ring_ = std::make_unique<RingSlot[]>(ring_capacity_);
  pages_ = std::make_unique<PageSlot[]>(kPageTableCapacity);
  classes_ = std::make_unique<ClassSlot[]>(kClassTableCapacity);
  affinity_ = std::make_unique<AffinitySlot[]>(kAffinityTableCapacity);
}

AccessLog::~AccessLog() {
  MutexLock lock(capture_mu_);
  if (capture_.is_open()) (void)capture_.Close();
}

AccessLog& AccessLog::Global() {
  // Leaked singleton: charge sites may run during static destruction.
  static AccessLog* log = new AccessLog();
  return *log;
}

void AccessLog::Start(uint32_t sample_period) {
  if (sample_period == 0) sample_period = 1;
  sample_period_.store(sample_period, std::memory_order_relaxed);
  overflow_journaled_.store(false, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
  Journal::Global().Append(JournalEvent::kAccessRecorderStart,
                           static_cast<int64_t>(sample_period));
}

void AccessLog::Stop() {
  enabled_.store(false, std::memory_order_relaxed);
  Journal::Global().Append(JournalEvent::kAccessRecorderStop,
                           static_cast<int64_t>(recorded()));
}

Status AccessLog::StartCapture(const std::string& path) {
  {
    MutexLock lock(capture_mu_);
    if (capture_.is_open()) {
      return Status::FailedPrecondition("capture already active");
    }
    ODE_RETURN_IF_ERROR(capture_.Open(path));
    capturing_.store(true, std::memory_order_release);
  }
  if (!enabled()) Start(sample_period());
  return Status::OK();
}

Result<uint64_t> AccessLog::StopCapture() {
  MutexLock lock(capture_mu_);
  capturing_.store(false, std::memory_order_release);
  return capture_.Close();
}

bool AccessLog::SampledOut() {
  uint32_t period = sample_period_.load(std::memory_order_relaxed);
  if (period <= 1) return false;
  return sample_tick_.fetch_add(1, std::memory_order_relaxed) % period != 0;
}

void AccessLog::CountDrop(uint64_t n) {
  dropped_.fetch_add(n, std::memory_order_relaxed);
  DroppedCounter()->Add(n);
}

void AccessLog::NoteOverwrite() {
  overwritten_.fetch_add(1, std::memory_order_relaxed);
  OverwrittenCounter()->Increment();
  // Journal the first overflow after each Start: one record tells the
  // post-mortem the ring wrapped without flooding it every event.
  if (!overflow_journaled_.exchange(true, std::memory_order_relaxed)) {
    Journal::Global().Append(JournalEvent::kAccessRingOverflow,
                             static_cast<int64_t>(ring_capacity_));
  }
}

void AccessLog::AppendToRing(const AccessEvent& event) {
  uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  RingSlot& slot = ring_[seq & ring_mask_];
  uint64_t current = slot.commit.load(std::memory_order_relaxed);
  while (true) {
    if (current == kBusy || current > seq) {
      CountDrop();
      return;
    }
    if (slot.commit.compare_exchange_weak(current, kBusy,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
      break;
    }
  }
  if (current != 0) NoteOverwrite();
  slot.ts_ns.store(event.ts_ns, std::memory_order_relaxed);
  slot.op.store(static_cast<uint8_t>(event.op), std::memory_order_relaxed);
  slot.cluster.store(event.cluster, std::memory_order_relaxed);
  slot.local.store(event.local, std::memory_order_relaxed);
  slot.page.store(event.page, std::memory_order_relaxed);
  slot.class_label.store(event.class_label, std::memory_order_relaxed);
  slot.session_id.store(event.session_id, std::memory_order_relaxed);
  slot.trace_id.store(event.trace_id, std::memory_order_relaxed);
  slot.commit.store(seq, std::memory_order_release);
  recorded_.fetch_add(1, std::memory_order_relaxed);
  RecordedCounter()->Increment();
}

void AccessLog::BumpPageHeat(uint64_t page, bool object_access) {
  uint64_t key = page + 1;  // 0 marks an empty slot
  size_t index = HashKey(key) % kPageTableCapacity;
  for (size_t probe = 0; probe < kPageTableCapacity; ++probe) {
    PageSlot& slot = pages_[(index + probe) % kPageTableCapacity];
    uint64_t current = slot.key.load(std::memory_order_acquire);
    if (current == 0) {
      if (!slot.key.compare_exchange_strong(current, key,
                                            std::memory_order_acq_rel)) {
        if (current != key) continue;  // someone else claimed it
      }
      current = key;
    }
    if (current == key) {
      (object_access ? slot.object_accesses : slot.pool_touches)
          .fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  CountDrop();  // table full: heat map becomes a floor, count the loss
}

void AccessLog::BumpClassHeat(const char* label, AccessOp op) {
  if (label == nullptr) return;
  size_t index =
      HashKey(reinterpret_cast<uintptr_t>(label)) % kClassTableCapacity;
  for (size_t probe = 0; probe < kClassTableCapacity; ++probe) {
    ClassSlot& slot = classes_[(index + probe) % kClassTableCapacity];
    const char* current = slot.key.load(std::memory_order_acquire);
    if (current == nullptr) {
      if (!slot.key.compare_exchange_strong(current, label,
                                            std::memory_order_acq_rel)) {
        if (current != label) continue;
      }
      current = label;
    }
    if (current == label) {
      slot.total.fetch_add(1, std::memory_order_relaxed);
      slot.by_op[static_cast<size_t>(op)].fetch_add(
          1, std::memory_order_relaxed);
      return;
    }
  }
  CountDrop();
}

void AccessLog::Record(AccessOp op, uint64_t cluster, uint64_t local,
                       const char* class_label, uint64_t page) {
  if (!enabled()) return;
  if (SampledOut()) return;
  AccessEvent event;
  event.ts_ns = Tracing::NowNanos();
  event.op = op;
  event.cluster = cluster;
  event.local = local;
  event.page = page;
  event.class_label = class_label;
  event.session_id = CurrentSessionId();
  event.trace_id = CurrentTraceContext().trace_id;
  AppendToRing(event);
  BumpPageHeat(page, /*object_access=*/true);
  BumpClassHeat(class_label, op);
  if (capturing_.load(std::memory_order_acquire)) {
    MutexLock lock(capture_mu_);
    if (capture_.is_open()) capture_.WriteEvent(event);
  }
}

void AccessLog::RecordPageTouch(uint64_t page) {
  if (!enabled()) return;
  if (SampledOut()) return;
  BumpPageHeat(page, /*object_access=*/false);
}

void AccessLog::RecordAffinity(uint64_t src_cluster, uint64_t src_local,
                               const char* src_class, uint64_t dst_cluster,
                               uint64_t dst_local, const char* dst_class) {
  if (!enabled()) return;
  uint64_t hash =
      HashAffinity(src_cluster, src_local, dst_cluster, dst_local);
  size_t index = hash % kAffinityTableCapacity;
  bool counted = false;
  for (size_t probe = 0; probe < kAffinityTableCapacity; ++probe) {
    AffinitySlot& slot = affinity_[(index + probe) % kAffinityTableCapacity];
    uint32_t state = slot.state.load(std::memory_order_acquire);
    if (state == 0) {
      if (slot.state.compare_exchange_strong(state, 1,
                                             std::memory_order_acq_rel)) {
        slot.src_cluster = src_cluster;
        slot.src_local = src_local;
        slot.dst_cluster = dst_cluster;
        slot.dst_local = dst_local;
        slot.src_class = src_class;
        slot.dst_class = dst_class;
        slot.count.store(1, std::memory_order_relaxed);
        slot.state.store(2, std::memory_order_release);
        counted = true;
        break;
      }
      state = slot.state.load(std::memory_order_acquire);
    }
    if (state == 1) continue;  // claimer is mid-write; probe onward
    if (slot.src_cluster == src_cluster && slot.src_local == src_local &&
        slot.dst_cluster == dst_cluster && slot.dst_local == dst_local) {
      slot.count.fetch_add(1, std::memory_order_relaxed);
      counted = true;
      break;
    }
  }
  if (!counted) CountDrop();
  if (capturing_.load(std::memory_order_acquire)) {
    MutexLock lock(capture_mu_);
    if (capture_.is_open()) {
      capture_.WriteAffinity(src_cluster, src_local, src_class,
                             dst_cluster, dst_local, dst_class);
    }
  }
}

bool AccessLog::ReadRingSlot(uint64_t seq, AccessEvent* out) const {
  const RingSlot& slot = ring_[seq & ring_mask_];
  if (slot.commit.load(std::memory_order_acquire) != seq) return false;
  out->seq = seq;
  out->ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
  out->op = static_cast<AccessOp>(slot.op.load(std::memory_order_relaxed));
  out->cluster = slot.cluster.load(std::memory_order_relaxed);
  out->local = slot.local.load(std::memory_order_relaxed);
  out->page = slot.page.load(std::memory_order_relaxed);
  out->class_label = slot.class_label.load(std::memory_order_relaxed);
  out->session_id = slot.session_id.load(std::memory_order_relaxed);
  out->trace_id = slot.trace_id.load(std::memory_order_relaxed);
  return slot.commit.load(std::memory_order_acquire) == seq;
}

std::vector<AccessEvent> AccessLog::SnapshotRing() const {
  uint64_t newest = next_seq_.load(std::memory_order_acquire);
  uint64_t oldest = newest > ring_capacity_ ? newest - ring_capacity_ + 1 : 1;
  std::vector<AccessEvent> out;
  out.reserve(newest >= oldest ? newest - oldest + 1 : 0);
  for (uint64_t seq = oldest; seq <= newest; ++seq) {
    AccessEvent event;
    if (ReadRingSlot(seq, &event)) out.push_back(event);
  }
  return out;
}

AccessProfile AccessLog::SnapshotProfile(size_t top_pages,
                                         size_t top_edges) const {
  ODE_TRACE_SPAN("obs.access_snapshot");
  AccessProfile profile;
  for (size_t i = 0; i < kPageTableCapacity; ++i) {
    const PageSlot& slot = pages_[i];
    uint64_t key = slot.key.load(std::memory_order_acquire);
    if (key == 0) continue;
    PageHeat heat;
    heat.page = key - 1;
    heat.object_accesses =
        slot.object_accesses.load(std::memory_order_relaxed);
    heat.pool_touches = slot.pool_touches.load(std::memory_order_relaxed);
    profile.pages.push_back(heat);
  }
  std::sort(profile.pages.begin(), profile.pages.end(),
            [](const PageHeat& a, const PageHeat& b) {
              uint64_t ta = a.object_accesses + a.pool_touches;
              uint64_t tb = b.object_accesses + b.pool_touches;
              if (ta != tb) return ta > tb;
              return a.page < b.page;
            });
  if (top_pages != 0 && profile.pages.size() > top_pages) {
    profile.pages.resize(top_pages);
  }

  for (size_t i = 0; i < kClassTableCapacity; ++i) {
    const ClassSlot& slot = classes_[i];
    const char* key = slot.key.load(std::memory_order_acquire);
    if (key == nullptr) continue;
    ClassHeat heat;
    heat.class_label = key;
    heat.total = slot.total.load(std::memory_order_relaxed);
    for (size_t op = 0; op < kAccessOpCount; ++op) {
      heat.by_op[op] = slot.by_op[op].load(std::memory_order_relaxed);
    }
    profile.classes.push_back(heat);
    profile.class_counts[key] += heat.total;
  }
  std::sort(profile.classes.begin(), profile.classes.end(),
            [](const ClassHeat& a, const ClassHeat& b) {
              if (a.total != b.total) return a.total > b.total;
              return std::string_view(a.class_label) <
                     std::string_view(b.class_label);
            });

  for (size_t i = 0; i < kAffinityTableCapacity; ++i) {
    const AffinitySlot& slot = affinity_[i];
    if (slot.state.load(std::memory_order_acquire) != 2) continue;
    AffinityEdge edge;
    edge.src_cluster = slot.src_cluster;
    edge.src_local = slot.src_local;
    edge.dst_cluster = slot.dst_cluster;
    edge.dst_local = slot.dst_local;
    edge.src_class = slot.src_class;
    edge.dst_class = slot.dst_class;
    edge.count = slot.count.load(std::memory_order_relaxed);
    profile.edges.push_back(edge);
  }
  std::sort(profile.edges.begin(), profile.edges.end(),
            [](const AffinityEdge& a, const AffinityEdge& b) {
              if (a.count != b.count) return a.count > b.count;
              if (a.src_cluster != b.src_cluster)
                return a.src_cluster < b.src_cluster;
              if (a.src_local != b.src_local) return a.src_local < b.src_local;
              if (a.dst_cluster != b.dst_cluster)
                return a.dst_cluster < b.dst_cluster;
              return a.dst_local < b.dst_local;
            });
  if (top_edges != 0 && profile.edges.size() > top_edges) {
    profile.edges.resize(top_edges);
  }
  return profile;
}

std::string AccessLog::RenderHeatmapJson(size_t top_n) const {
  AccessProfile profile = SnapshotProfile(top_n, top_n);
  std::string out = "{\"enabled\":";
  out += enabled() ? "true" : "false";
  out += ",\"sample_period\":" + std::to_string(sample_period());
  out += ",\"capturing\":";
  out += capturing() ? "true" : "false";
  out += ",\"ring\":{\"capacity\":" + std::to_string(ring_capacity_);
  out += ",\"recorded\":" + std::to_string(recorded());
  out += ",\"dropped\":" + std::to_string(dropped());
  out += ",\"overwritten\":" + std::to_string(overwritten());
  out += "},\"pages\":[";
  bool first = true;
  for (const PageHeat& heat : profile.pages) {
    if (!first) out += ",";
    first = false;
    out += "{\"page\":" + std::to_string(heat.page);
    out += ",\"object_accesses\":" + std::to_string(heat.object_accesses);
    out += ",\"pool_touches\":" + std::to_string(heat.pool_touches) + "}";
  }
  out += "],\"classes\":[";
  first = true;
  for (const ClassHeat& heat : profile.classes) {
    if (!first) out += ",";
    first = false;
    out += "{\"class\":\"";
    AppendJsonEscapedLabel(&out, heat.class_label);
    out += "\",\"total\":" + std::to_string(heat.total);
    for (size_t op = 0; op < kAccessOpCount; ++op) {
      out += ",\"";
      out += AccessOpName(static_cast<AccessOp>(op));
      out += "\":" + std::to_string(heat.by_op[op]);
    }
    out += "}";
  }
  out += "],\"edges\":[";
  first = true;
  for (const AffinityEdge& edge : profile.edges) {
    if (!first) out += ",";
    first = false;
    out += "{\"src\":\"c" + std::to_string(edge.src_cluster) + ":o" +
           std::to_string(edge.src_local) + "\"";
    out += ",\"dst\":\"c" + std::to_string(edge.dst_cluster) + ":o" +
           std::to_string(edge.dst_local) + "\"";
    out += ",\"src_class\":\"";
    if (edge.src_class != nullptr) AppendJsonEscapedLabel(&out, edge.src_class);
    out += "\",\"dst_class\":\"";
    if (edge.dst_class != nullptr) AppendJsonEscapedLabel(&out, edge.dst_class);
    out += "\",\"count\":" + std::to_string(edge.count) + "}";
  }
  out += "]}\n";
  return out;
}

std::string AccessLog::RenderHeatmapText(size_t top_n) const {
  AccessProfile profile = SnapshotProfile(top_n, top_n);
  std::ostringstream os;
  os << "-- access heat map (recorder "
     << (enabled() ? "on" : "off") << ", 1/" << sample_period()
     << " sampling; " << recorded() << " recorded, " << dropped()
     << " dropped, " << overwritten() << " overwritten) --\n";
  os << "classes:\n";
  for (const ClassHeat& heat : profile.classes) {
    os << "  " << heat.class_label << ": " << heat.total;
    for (size_t op = 0; op < kAccessOpCount; ++op) {
      if (heat.by_op[op] != 0) {
        os << " " << AccessOpName(static_cast<AccessOp>(op)) << "="
           << heat.by_op[op];
      }
    }
    os << "\n";
  }
  os << "pages (hottest " << profile.pages.size() << "):\n";
  for (const PageHeat& heat : profile.pages) {
    os << "  page " << heat.page << ": " << heat.object_accesses
       << " object accesses, " << heat.pool_touches << " pool touches\n";
  }
  os << "affinity edges (top " << profile.edges.size() << "):\n";
  for (const AffinityEdge& edge : profile.edges) {
    os << "  c" << edge.src_cluster << ":o" << edge.src_local << " ("
       << (edge.src_class != nullptr ? edge.src_class : "?") << ") -> c"
       << edge.dst_cluster << ":o" << edge.dst_local << " ("
       << (edge.dst_class != nullptr ? edge.dst_class : "?") << ") x"
       << edge.count << "\n";
  }
  return os.str();
}

void AccessLog::ResetForTest() {
  enabled_.store(false, std::memory_order_relaxed);
  {
    MutexLock lock(capture_mu_);
    capturing_.store(false, std::memory_order_relaxed);
    if (capture_.is_open()) (void)capture_.Close();
  }
  for (size_t i = 0; i < ring_capacity_; ++i) {
    ring_[i].commit.store(0, std::memory_order_relaxed);
  }
  for (size_t i = 0; i < kPageTableCapacity; ++i) {
    pages_[i].key.store(0, std::memory_order_relaxed);
    pages_[i].object_accesses.store(0, std::memory_order_relaxed);
    pages_[i].pool_touches.store(0, std::memory_order_relaxed);
  }
  for (size_t i = 0; i < kClassTableCapacity; ++i) {
    classes_[i].key.store(nullptr, std::memory_order_relaxed);
    classes_[i].total.store(0, std::memory_order_relaxed);
    for (size_t op = 0; op < kAccessOpCount; ++op) {
      classes_[i].by_op[op].store(0, std::memory_order_relaxed);
    }
  }
  for (size_t i = 0; i < kAffinityTableCapacity; ++i) {
    affinity_[i].state.store(0, std::memory_order_relaxed);
    affinity_[i].count.store(0, std::memory_order_relaxed);
  }
  sample_period_.store(1, std::memory_order_relaxed);
  sample_tick_.store(0, std::memory_order_relaxed);
  next_seq_.store(0, std::memory_order_relaxed);
  recorded_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  overwritten_.store(0, std::memory_order_relaxed);
  overflow_journaled_.store(false, std::memory_order_relaxed);
}

}  // namespace ode::obs
