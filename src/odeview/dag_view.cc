#include "odeview/dag_view.h"

#include <algorithm>

#include "owl/framebuffer.h"

namespace ode::view {

namespace {
constexpr int kMaxZoom = 2;
}  // namespace

DagView::DagView(std::string name, dag::Digraph graph,
                 ClassClickCallback on_class_click)
    : owl::Widget(std::move(name)),
      graph_(std::move(graph)),
      on_class_click_(std::move(on_class_click)) {
  (void)Relayout();
}

Status DagView::Relayout() {
  dag::LayoutOptions options;
  if (zoom_ == 1) {
    options.fixed_node_width = 6;
  } else if (zoom_ >= 2) {
    options.fixed_node_width = 1;
    options.node_gap = 1;
    options.layer_gap = 1;
  }
  ODE_ASSIGN_OR_RETURN(layout_, dag::LayoutDag(graph_, options));
  return Status::OK();
}

Status DagView::ZoomIn() {
  if (zoom_ == 0) return Status::OK();
  --zoom_;
  return Relayout();
}

Status DagView::ZoomOut() {
  if (zoom_ >= kMaxZoom) return Status::OK();
  ++zoom_;
  return Relayout();
}

void DagView::ScrollBy(int dx, int dy) {
  // Any diagram cell may be scrolled to the viewport origin (the last
  // row/column included), so the bound is extent - 1, not extent -
  // viewport.
  scroll_.x = std::clamp(scroll_.x + dx, 0, std::max(0, layout_.width - 1));
  scroll_.y =
      std::clamp(scroll_.y + dy, 0, std::max(0, layout_.height - 1));
}

std::string DagView::DisplayLabel(dag::NodeId node) const {
  const std::string& label = graph_.label(node);
  switch (zoom_) {
    case 0:
      return label;
    case 1:
      return label.substr(0, 4);
    default:
      return "*";
  }
}

owl::Rect DagView::NodeBox(dag::NodeId node) const {
  const dag::PlacedNode& placed =
      layout_.nodes[static_cast<size_t>(node)];
  return owl::Rect{placed.x, placed.y, placed.width, 1};
}

std::string DagView::ClassAt(owl::Point local) const {
  owl::Point diagram{local.x + scroll_.x, local.y + scroll_.y};
  for (dag::NodeId node = 0; node < graph_.node_count(); ++node) {
    if (NodeBox(node).Contains(diagram)) return graph_.label(node);
  }
  return std::string();
}

std::vector<std::string> DagView::RenderLines() const {
  owl::Framebuffer fb(std::max(1, layout_.width),
                      std::max(1, layout_.height));
  // Edges first, nodes on top.
  for (const auto& path : layout_.edge_paths) {
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      const dag::EdgeBend& a = path[i];
      const dag::EdgeBend& b = path[i + 1];
      // Route: vertical drop, then horizontal run at the target row-1,
      // then into the target. With layer_gap >= 1 this stays between
      // the node rows.
      int mid_y = b.y - 1;
      if (mid_y <= a.y) mid_y = a.y + 1;
      fb.DrawVLine(a.x, a.y + 1, mid_y - a.y - 1, '|');
      int x0 = std::min(a.x, b.x);
      int x1 = std::max(a.x, b.x);
      if (x1 > x0) fb.DrawHLine(x0, mid_y, x1 - x0 + 1, '-');
      fb.Put(a.x, mid_y, '+');
      fb.Put(b.x, mid_y, '+');
      fb.DrawVLine(b.x, mid_y + 1, b.y - mid_y - 1, '|');
      if (i + 2 == path.size()) fb.Put(b.x, b.y - 1, 'v');
    }
  }
  for (dag::NodeId node = 0; node < graph_.node_count(); ++node) {
    const dag::PlacedNode& placed =
        layout_.nodes[static_cast<size_t>(node)];
    std::string label = DisplayLabel(node);
    std::string boxed;
    if (zoom_ >= 2) {
      boxed = "*";
    } else {
      boxed = "[" + label + "]";
      boxed = boxed.substr(0, static_cast<size_t>(placed.width));
    }
    fb.DrawText(placed.x, placed.y, boxed);
  }
  std::vector<std::string> lines;
  lines.reserve(static_cast<size_t>(fb.height()));
  for (int y = 0; y < fb.height(); ++y) lines.push_back(fb.Row(y));
  return lines;
}

void DagView::RenderSelf(owl::Framebuffer* fb, owl::Point origin) const {
  std::vector<std::string> lines = RenderLines();
  for (int y = 0; y < rect().height; ++y) {
    size_t row = static_cast<size_t>(y + scroll_.y);
    if (row >= lines.size()) break;
    std::string_view line = lines[row];
    if (static_cast<size_t>(scroll_.x) >= line.size()) continue;
    fb->DrawText(origin.x, origin.y + y,
                 line.substr(static_cast<size_t>(scroll_.x),
                             static_cast<size_t>(rect().width)));
  }
}

bool DagView::OnClick(owl::Point local) {
  std::string cls = ClassAt(local);
  if (cls.empty()) return false;
  if (on_class_click_) on_class_click_(cls);
  return true;
}

bool DagView::OnScroll(owl::Point, int amount) {
  ScrollBy(0, amount);
  return true;
}

}  // namespace ode::view
