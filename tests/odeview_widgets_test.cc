// Unit tests for the OdeView-specific widgets and smaller components:
// DagView, DisplayStateRegistry, the versions window, and the panel's
// project button wiring.

#include <gtest/gtest.h>

#include "dynlink/lab_modules.h"
#include "odb/labdb.h"
#include "odeview/app.h"
#include "odeview/dag_view.h"
#include "odeview/display_state.h"
#include "owl/widgets.h"

namespace ode::view {
namespace {

// --- DisplayState ------------------------------------------------------

TEST(DisplayStateTest, ToggleTracksOpenFormats) {
  ClusterDisplayState state;
  EXPECT_FALSE(state.IsOpen("text"));
  EXPECT_TRUE(state.Toggle("text"));
  EXPECT_TRUE(state.IsOpen("text"));
  EXPECT_TRUE(state.Toggle("picture"));
  EXPECT_EQ(state.open_formats,
            (std::vector<std::string>{"text", "picture"}));
  EXPECT_FALSE(state.Toggle("text"));
  EXPECT_EQ(state.open_formats, (std::vector<std::string>{"picture"}));
}

TEST(DisplayStateTest, RegistryKeysByDbAndClass) {
  DisplayStateRegistry registry;
  ClusterDisplayState* a = registry.StateFor("db1", "employee");
  ClusterDisplayState* b = registry.StateFor("db2", "employee");
  ClusterDisplayState* c = registry.StateFor("db1", "manager");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(registry.StateFor("db1", "employee"), a);
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_EQ(registry.FindState("db3", "x"), nullptr);
  registry.Clear();
  EXPECT_EQ(registry.size(), 0u);
}

TEST(DisplayStateTest, ProjectionMaskBuilding) {
  std::vector<std::string> list = {"a", "b", "c"};
  EXPECT_EQ(BuildProjectionMask(list, {"b"}),
            (std::vector<bool>{false, true, false}));
  EXPECT_EQ(BuildProjectionMask(list, {"c", "a"}),
            (std::vector<bool>{true, false, true}));
  EXPECT_EQ(BuildProjectionMask(list, {"ghost"}),
            (std::vector<bool>{false, false, false}));
  EXPECT_TRUE(BuildProjectionMask({}, {"a"}).empty());
}

// --- DagView --------------------------------------------------------------

dag::Digraph SmallGraph() {
  return dag::Digraph::FromEdges(
      {{"base", "left"}, {"base", "right"}, {"left", "leaf"},
       {"right", "leaf"}});
}

TEST(DagViewTest, ClassAtFindsNodes) {
  DagView view("dag", SmallGraph());
  view.set_rect(owl::Rect{0, 0, 60, 20});
  for (const char* cls : {"base", "left", "right", "leaf"}) {
    dag::NodeId node = *view.graph().FindNode(cls);
    const dag::PlacedNode& placed = view.layout().nodes[node];
    EXPECT_EQ(view.ClassAt(owl::Point{placed.x, placed.y}), cls);
    EXPECT_EQ(view.ClassAt(
                  owl::Point{placed.x + placed.width - 1, placed.y}),
              cls);
  }
  EXPECT_EQ(view.ClassAt(owl::Point{59, 19}), "");
}

TEST(DagViewTest, ClickInvokesCallback) {
  std::vector<std::string> clicked;
  DagView view("dag", SmallGraph(),
               [&](const std::string& cls) { clicked.push_back(cls); });
  view.set_rect(owl::Rect{0, 0, 60, 20});
  dag::NodeId node = *view.graph().FindNode("leaf");
  const dag::PlacedNode& placed = view.layout().nodes[node];
  EXPECT_TRUE(view.DispatchClick(owl::Point{placed.x + 1, placed.y}));
  ASSERT_EQ(clicked.size(), 1u);
  EXPECT_EQ(clicked[0], "leaf");
  // A click on empty canvas is not consumed.
  EXPECT_FALSE(view.DispatchClick(owl::Point{59, 19}));
}

TEST(DagViewTest, ScrollOffsetsClassAt) {
  DagView view("dag", SmallGraph());
  view.set_rect(owl::Rect{0, 0, 5, 3});  // tiny viewport forces scroll
  dag::NodeId node = *view.graph().FindNode("leaf");
  const dag::PlacedNode& placed = view.layout().nodes[node];
  view.ScrollBy(placed.x, placed.y);
  EXPECT_EQ(view.ClassAt(owl::Point{0, 0}), "leaf");
}

TEST(DagViewTest, RenderShowsEdgesAndArrowheads) {
  DagView view("dag", SmallGraph());
  std::string out;
  for (const std::string& line : view.RenderLines()) out += line + "\n";
  EXPECT_NE(out.find("[base]"), std::string::npos);
  EXPECT_NE(out.find('v'), std::string::npos);  // arrowheads
  EXPECT_NE(out.find('|'), std::string::npos);  // vertical segments
}

TEST(DagViewTest, ZoomLevelsShrinkRendering) {
  DagView view("dag", SmallGraph());
  int w0 = view.layout().width;
  ASSERT_TRUE(view.ZoomOut().ok());
  int w1 = view.layout().width;
  ASSERT_TRUE(view.ZoomOut().ok());
  int w2 = view.layout().width;
  EXPECT_LT(w2, w1);
  EXPECT_LT(w1, w0);
  // Clicking still resolves nodes at the coarsest zoom.
  dag::NodeId node = *view.graph().FindNode("base");
  const dag::PlacedNode& placed = view.layout().nodes[node];
  EXPECT_EQ(view.ClassAt(owl::Point{placed.x, placed.y}), "base");
}

// --- Versions window + project button ------------------------------------------

class WidgetSession : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::move(*odb::Database::CreateInMemory("lab"));
    odb::LabDbConfig config;
    config.employees = 5;
    config.managers = 1;
    config.departments = 1;
    ASSERT_TRUE(odb::BuildLabDatabase(db_.get(), config).ok());
    app_ = std::make_unique<OdeViewApp>(200, 80);
    ASSERT_TRUE(dynlink::RegisterLabDisplayModules(app_->repository(),
                                                   "lab", db_->schema())
                    .ok());
    ASSERT_TRUE(app_->AddDatabaseBorrowed(db_.get()).ok());
    interactor_ = *app_->OpenDatabase("lab");
  }
  std::unique_ptr<odb::Database> db_;
  std::unique_ptr<OdeViewApp> app_;
  DbInteractor* interactor_ = nullptr;
};

TEST_F(WidgetSession, VersionsWindowListsHistory) {
  // document is a versioned class; give the first one some history.
  odb::Oid doc = *db_->FirstObject("document");
  for (int i = 0; i < 3; ++i) {
    odb::ObjectBuffer buffer = *db_->GetObject(doc);
    *buffer.value.FindMutableField("title") =
        odb::Value::String("rev " + std::to_string(i));
    ASSERT_TRUE(db_->UpdateObject(doc, buffer.value).ok());
  }
  BrowseNode* node = *interactor_->OpenObjectSet("document");
  ASSERT_TRUE(node->Next().ok());
  // The panel offers a versions button for versioned classes.
  owl::Window* panel = app_->server()->FindWindow(node->panel_window());
  ASSERT_NE(panel->FindWidget("versions"), nullptr);
  ASSERT_TRUE(app_->server()
                  ->ClickWidget(node->panel_window(), "versions")
                  .ok());
  ASSERT_NE(node->versions_window(), owl::kNoWindow);
  owl::Window* window =
      app_->server()->FindWindow(node->versions_window());
  auto* text =
      dynamic_cast<owl::ScrollText*>(window->FindWidget("content"));
  ASSERT_NE(text, nullptr);
  std::string joined;
  for (const std::string& line : text->lines()) joined += line + "\n";
  EXPECT_NE(joined.find("v1"), std::string::npos);
  EXPECT_NE(joined.find("*v4"), std::string::npos);  // current marked
  EXPECT_NE(joined.find("rev 2"), std::string::npos);
}

TEST_F(WidgetSession, UnversionedClassHasNoVersionsButton) {
  BrowseNode* node = *interactor_->OpenObjectSet("employee");
  owl::Window* panel = app_->server()->FindWindow(node->panel_window());
  EXPECT_EQ(panel->FindWidget("versions"), nullptr);
  ASSERT_TRUE(node->Next().ok());
  EXPECT_TRUE(node->OpenVersionsWindow().IsNotFound());
}

TEST_F(WidgetSession, ProjectButtonOpensDialog) {
  BrowseNode* node = *interactor_->OpenObjectSet("employee");
  ASSERT_TRUE(node->Next().ok());
  EXPECT_EQ(interactor_->projection_dialog("employee"), owl::kNoWindow);
  ASSERT_TRUE(app_->server()
                  ->ClickWidget(node->panel_window(), "project")
                  .ok());
  EXPECT_NE(interactor_->projection_dialog("employee"), owl::kNoWindow);
}

}  // namespace
}  // namespace ode::view
