// Figure 7: following an embedded reference (employee -> department):
// lazy loading of the referenced object and its object window.

#include <benchmark/benchmark.h>

#include "bench/bench_scatter.h"
#include "bench/bench_util.h"
#include "odb/buffer_pool.h"
#include "odb/cluster/advisor.h"
#include "odb/cluster/plan.h"

namespace ode::bench {
namespace {

void BM_ReferenceResolution(benchmark::State& state) {
  // The object-manager path: fetch employee, chase dept, fetch dept.
  LabSession session = LabSession::Create();
  odb::Database* db = session.db.get();
  std::vector<odb::Oid> employees =
      ValueOrDie(db->ScanCluster("employee"), "scan");
  size_t i = 0;
  for (auto _ : state) {
    odb::ObjectBuffer emp = ValueOrDie(
        db->GetObject(employees[i++ % employees.size()]), "employee");
    odb::Oid dept = emp.value.FindField("dept")->AsRef();
    benchmark::DoNotOptimize(ValueOrDie(db->GetObject(dept), "dept"));
  }
  state.SetItemsProcessed(state.iterations() * 2);  // two object fetches
}
BENCHMARK(BM_ReferenceResolution);

void BM_FollowReferenceWindow(benchmark::State& state) {
  // The full Fig. 7 interaction: click the dept button — an object
  // window is created and bound to the referenced department.
  LabSession session = LabSession::Create();
  view::BrowseNode* node =
      ValueOrDie(session.interactor->OpenObjectSet("employee"), "set");
  CheckOk(node->Next(), "next");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ValueOrDie(node->FollowReference("dept"), "follow"));
    state.PauseTiming();
    // Recreate the object-set tree so the next follow is cold.
    CheckOk(session.interactor->CloseObjectSet("employee"), "close");
    node = ValueOrDie(session.interactor->OpenObjectSet("employee"),
                      "reopen");
    CheckOk(node->Next(), "next");
    state.ResumeTiming();
  }
}
BENCHMARK(BM_FollowReferenceWindow);

void BM_FollowReferenceIdempotent(benchmark::State& state) {
  // Re-clicking the dept button reuses the existing window.
  LabSession session = LabSession::Create();
  view::BrowseNode* node =
      ValueOrDie(session.interactor->OpenObjectSet("employee"), "set");
  CheckOk(node->Next(), "next");
  (void)ValueOrDie(node->FollowReference("dept"), "first follow");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ValueOrDie(node->FollowReference("dept"), "refind"));
  }
}
BENCHMARK(BM_FollowReferenceIdempotent);

void BM_NullReferenceHandling(benchmark::State& state) {
  // Chasing a null reference must stay cheap (shows "<no object>").
  LabSession session = LabSession::Create();
  view::BrowseNode* node =
      ValueOrDie(session.interactor->OpenObjectSet("department"), "set");
  CheckOk(node->Next(), "next");
  // department.head is set; employee.boss of managers is null — use a
  // manager's own "boss" instead.
  view::BrowseNode* managers =
      ValueOrDie(session.interactor->OpenObjectSet("manager"), "managers");
  CheckOk(managers->Next(), "next");
  view::BrowseNode* boss =
      ValueOrDie(managers->FollowReference("boss"), "follow");
  for (auto _ : state) {
    CheckOk(boss->RefreshSubtree(), "refresh");
    benchmark::DoNotOptimize(boss->has_current());
  }
}
BENCHMARK(BM_NullReferenceHandling);

// --- Reference chase vs physical layout --------------------------------
//
// The same Fig. 7 access mix (fetch employee, chase dept_ref, fetch
// dept) over a deliberately scattered heap, before and after the
// clustering advisor's plan is applied. Both run in one process so the
// `pool_misses` counter ratio is machine-independent; CI gates
// Reclustered : Scattered at 0.5x — re-clustering must at least halve
// the page fetches on the workload it was planned from.

void ReferenceChaseLoop(benchmark::State& state, ScatteredBenchDb& lab) {
  odb::Session session = lab.db->OpenSession();
  auto chase = [&] {
    for (odb::Oid oid : lab.hot) {
      odb::ObjectBuffer emp =
          ValueOrDie(session.GetObject(oid), "employee");
      odb::Oid dept = emp.value.FindField("dept_ref")->AsRef();
      benchmark::DoNotOptimize(ValueOrDie(session.GetObject(dept), "dept"));
    }
  };
  chase();  // prime the pool so cold-start misses do not count
  const uint64_t misses_before = lab.db->buffer_pool()->stats().misses;
  for (auto _ : state) {
    chase();
  }
  state.counters["pool_misses"] = benchmark::Counter(
      static_cast<double>(lab.db->buffer_pool()->stats().misses -
                          misses_before),
      benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(lab.hot.size()) * 2);
}

void BM_ReferenceChaseScattered(benchmark::State& state) {
  ScatteredBenchDb lab = MakeScatteredBenchDb(
      /*hot_count=*/64, /*cold_per_hot=*/4, /*pool_pages=*/16);
  ReferenceChaseLoop(state, lab);
}
BENCHMARK(BM_ReferenceChaseScattered);

void BM_ReferenceChaseReclustered(benchmark::State& state) {
  ScatteredBenchDb lab = MakeScatteredBenchDb(
      /*hot_count=*/64, /*cold_per_hot=*/4, /*pool_pages=*/16);
  obs::AccessProfile profile = ChainProfile(lab.hot, /*weight=*/8);
  odb::cluster::ClusterPlan plan = ValueOrDie(
      odb::cluster::BuildClusterPlan(lab.db.get(), profile), "plan");
  CheckOk(lab.db->Recluster(plan), "recluster");
  ReferenceChaseLoop(state, lab);
}
BENCHMARK(BM_ReferenceChaseReclustered);

}  // namespace
}  // namespace ode::bench

ODE_BENCH_MAIN();
