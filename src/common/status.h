#ifndef ODEVIEW_COMMON_STATUS_H_
#define ODEVIEW_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace ode {

/// Error category for a failed operation. `kOk` means success.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed a malformed argument.
  kNotFound,          ///< A named entity (class, object, window) is absent.
  kAlreadyExists,     ///< Creation of an entity that already exists.
  kCorruption,        ///< On-disk or in-buffer data failed validation.
  kIOError,           ///< Underlying file/pager operation failed.
  kOutOfRange,        ///< Index/cursor moved past a valid boundary.
  kFailedPrecondition,///< Operation invoked in the wrong state.
  kUnimplemented,     ///< Feature declared by the API but not available.
  kInternal,          ///< Invariant violation inside the library.
  kConstraintViolation,///< An Ode object constraint rejected an update.
  kDisplayFault,      ///< A class-designer display function misbehaved.
};

/// Returns the canonical lowercase name of `code` (e.g. "not found").
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail, in the RocksDB/Arrow idiom.
///
/// A `Status` is cheap to copy in the success case (no allocation) and
/// carries a code plus a human-readable message otherwise. The library
/// never throws; every fallible API returns `Status` or `Result<T>`.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status& other)
      : rep_(other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status DisplayFault(std::string msg) {
    return Status(StatusCode::kDisplayFault, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return rep_ == nullptr; }
  /// The status code; `kOk` when `ok()`.
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  /// The error message; empty when `ok()`.
  const std::string& message() const {
    static const std::string* empty = new std::string();
    return rep_ ? rep_->message : *empty;
  }

  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsDisplayFault() const { return code() == StatusCode::kDisplayFault; }
  bool IsConstraintViolation() const {
    return code() == StatusCode::kConstraintViolation;
  }

  /// "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };

  Status(StatusCode code, std::string msg)
      : rep_(std::make_unique<Rep>(Rep{code, std::move(msg)})) {}

  std::unique_ptr<Rep> rep_;  // null == OK
};

}  // namespace ode

/// Propagates a non-OK status to the caller. Usable only in functions
/// returning `Status` (or a type constructible from it, e.g. Result<T>).
#define ODE_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::ode::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

#endif  // ODEVIEW_COMMON_STATUS_H_
