// Golden-rendering tests: exact ASCII output of key windows. These pin
// the visual contract of the headless toolkit — if a change shifts a
// frame, truncates a title, or breaks scrollbar glyphs, these fail
// with a readable diff.

#include <gtest/gtest.h>

#include "dynlink/lab_modules.h"
#include "odb/labdb.h"
#include "odeview/app.h"
#include "owl/widgets.h"

namespace ode::owl {
namespace {

std::string Render(const Window& window, int w, int h) {
  Framebuffer fb(w, h);
  window.Render(&fb);
  return fb.ToString();
}

TEST(GoldenRenderTest, EmptyTitledWindow) {
  Window window(1, "lab", Point{0, 0}, Size{10, 2});
  EXPECT_EQ(Render(window, 14, 5),
            "+[ lab ]---+  \n"
            "|          |  \n"
            "|          |  \n"
            "+----------+  \n"
            "              \n");
}

TEST(GoldenRenderTest, ButtonsAndLabels) {
  Window window(1, "panel", Point{0, 0}, Size{18, 3});
  auto* button = static_cast<Button*>(window.root()->AddChild(
      std::make_unique<Button>("b", "next")));
  button->set_rect(Rect{0, 0, 7, 1});
  auto* toggled = static_cast<Button*>(window.root()->AddChild(
      std::make_unique<Button>("t", "text")));
  toggled->set_toggle_mode(true);
  toggled->Press();
  toggled->set_rect(Rect{8, 0, 8, 1});
  auto* label = static_cast<Label*>(window.root()->AddChild(
      std::make_unique<Label>("l", "object: c1:o1")));
  label->set_rect(Rect{0, 1, 18, 1});
  auto* disabled = static_cast<Button*>(window.root()->AddChild(
      std::make_unique<Button>("d", "prev")));
  disabled->set_enabled(false);
  disabled->set_rect(Rect{0, 2, 7, 1});
  EXPECT_EQ(Render(window, 22, 5),
            "+[ panel ]---------+  \n"
            "|[next]  [*text]   |  \n"
            "|object: c1:o1     |  \n"
            "|(prev)            |  \n"
            "+------------------+  \n");
}

TEST(GoldenRenderTest, ScrollTextWithScrollbars) {
  Window window(1, "t", Point{0, 0}, Size{8, 4});
  auto text = std::make_unique<ScrollText>(
      "s", std::vector<std::string>{"alpha", "beta", "gamma", "delta",
                                    "epsilon", "zeta"});
  text->set_rect(Rect{0, 0, 8, 4});
  auto* widget =
      static_cast<ScrollText*>(window.root()->AddChild(std::move(text)));
  widget->ScrollBy(1);
  EXPECT_EQ(Render(window, 12, 7),
            "+[ t ]---+  \n"
            "|beta   ^|  \n"
            "|gamma  #|  \n"
            "|delta  v|  \n"
            "|<.....> |  \n"
            "+--------+  \n"
            "            \n");
}

TEST(GoldenRenderTest, MenuSelection) {
  Window window(1, "m", Point{0, 0}, Size{12, 3});
  auto menu = std::make_unique<Menu>(
      "menu", std::vector<std::string>{"employee", "manager", "dept"});
  menu->set_rect(Rect{0, 0, 12, 3});
  auto* widget = static_cast<Menu*>(window.root()->AddChild(std::move(menu)));
  ASSERT_TRUE(widget->SelectItem("manager").ok());
  EXPECT_EQ(Render(window, 16, 6),
            "+[ m ]-------+  \n"
            "|  employee  |  \n"
            "|> manager   |  \n"
            "|  dept      |  \n"
            "+------------+  \n"
            "                \n");
}

TEST(GoldenRenderTest, RasterBitmap) {
  Window window(1, "img", Point{0, 0}, Size{4, 4});
  Bitmap bitmap = *Bitmap::FromPbm("P1 4 4 1 0 0 1 0 1 1 0 0 1 1 0 1 0 0 1");
  auto raster = std::make_unique<RasterView>("r", bitmap);
  raster->set_rect(Rect{0, 0, 4, 4});
  raster->set_scale_to_fit(false);
  window.root()->AddChild(std::move(raster));
  EXPECT_EQ(Render(window, 8, 7),
            "+[ im+  \n"
            "|#  #|  \n"
            "| ## |  \n"
            "| ## |  \n"
            "|#  #|  \n"
            "+----+  \n"
            "        \n");
}

}  // namespace
}  // namespace ode::owl

namespace ode::view {
namespace {

TEST(GoldenRenderTest, InitialDatabaseWindow) {
  OdeViewApp app(60, 20);
  auto db = std::move(*odb::Database::CreateInMemory("lab"));
  ASSERT_TRUE(app.AddDatabaseBorrowed(db.get()).ok());
  ASSERT_TRUE(app.OpenInitialWindow().ok());
  owl::Window* window =
      app.server()->FindWindow(app.initial_window());
  owl::Framebuffer fb(40, 6);
  window->Render(&fb);
  EXPECT_EQ(fb.ToString(),
            "+[ Ode databases ]-------------------+  \n"
            "|click a database icon:              |  \n"
            "| [() lab]                           |  \n"
            "|                                    |  \n"
            "+------------------------------------+  \n"
            "                                        \n");
}

}  // namespace
}  // namespace ode::view
