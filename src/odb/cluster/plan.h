#ifndef ODEVIEW_ODB_CLUSTER_PLAN_H_
#define ODEVIEW_ODB_CLUSTER_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "odb/oid.h"

namespace ode::odb::cluster {

/// One target heap page of a clustering plan: the records (logical
/// ids within one cluster) that should live together. `bytes` is the
/// packed on-page cost (stored record + slot per member), always
/// within the slotted page's budget.
struct PageGroup {
  std::vector<uint64_t> members;
  uint64_t bytes = 0;
};

/// The plan for one cluster (one class extent).
struct ClusterPlanEntry {
  ClusterId cluster = 0;
  std::string class_name;
  /// Co-location groups, strongest affinity first. Only groups with at
  /// least two members are kept — a singleton gains nothing by moving.
  std::vector<PageGroup> groups;
  /// Affinity weight crossing a page boundary under the current
  /// placement / under the plan (the advisor's cost model: every
  /// cross-page edge is a likely extra page fetch).
  uint64_t cross_page_before = 0;
  uint64_t cross_page_after = 0;
};

/// A page-placement plan computed by the advisor from access-recorder
/// heat + affinity (or from a captured ODEACC01 trace). Apply it with
/// `Database::Recluster`.
struct ClusterPlan {
  std::vector<ClusterPlanEntry> clusters;
  /// Affinity edges the advisor considered (after endpoint resolution).
  uint64_t edges_considered = 0;
  /// Plan-wide cross-page affinity totals (sums over `clusters`).
  uint64_t cross_page_before = 0;
  uint64_t cross_page_after = 0;
  /// Records the reorganizer will move when applying the plan.
  uint64_t planned_moves = 0;

  bool empty() const { return planned_moves == 0; }

  /// Predicted fraction of cross-page reference traversals eliminated:
  /// (before - after) / before, in [0, 1]; 0 when there is nothing to
  /// improve.
  double PredictedSavingRatio() const {
    if (cross_page_before == 0) return 0.0;
    return static_cast<double>(cross_page_before - cross_page_after) /
           static_cast<double>(cross_page_before);
  }

  /// Human-readable summary for the shell's `cluster-plan` command.
  std::string Summary() const;
};

}  // namespace ode::odb::cluster

#endif  // ODEVIEW_ODB_CLUSTER_PLAN_H_
