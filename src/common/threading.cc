#include "common/threading.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <utility>

#include "common/op_profile.h"
#include "common/watchdog.h"

namespace ode {

namespace {

/// Charges a blocking acquisition to the attached profile, if any.
/// Uncontended locks (try succeeds) charge nothing and skip the clock
/// reads entirely; with no profile attached the cost is one
/// thread-local pointer test.
template <typename NativeMutex, typename TryFn, typename LockFn>
void LockCharged(NativeMutex&, TryFn try_lock, LockFn lock) {
  obs::OpProfile* profile = obs::CurrentOpProfile();
  if (profile == nullptr) {
    lock();
    return;
  }
  if (try_lock()) return;
  auto start = std::chrono::steady_clock::now();
  lock();
  auto elapsed = std::chrono::steady_clock::now() - start;
  profile->ChargeLockWait(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
          .count()));
}

}  // namespace

uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next_id{1};
  thread_local uint32_t id =
      next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// ---------------------------------------------------------------------------
// Mutex

void Mutex::Lock() {
  LockRankValidator::OnAcquire(rank_, name_, this);
  // Claim before blocking: a thread wedged *waiting* for a
  // watchdog-visible lock is exactly what crash dumps should show.
  int slot = watchdog_visible_ ? obs::HoldRegistry::Claim(name_) : -1;
  LockCharged(mu_, [this] { return mu_.try_lock(); }, [this] { mu_.lock(); });
  hold_slot_ = slot;
}

bool Mutex::TryLock() {
  if (!mu_.try_lock()) return false;
  LockRankValidator::OnTryAcquire(rank_, name_, this);
  hold_slot_ = watchdog_visible_ ? obs::HoldRegistry::Claim(name_) : -1;
  return true;
}

void Mutex::Unlock() {
  int slot = hold_slot_;
  hold_slot_ = -1;
  mu_.unlock();
  obs::HoldRegistry::Release(slot);
  LockRankValidator::OnRelease(this);
}

void Mutex::PrepareWait() {
  obs::HoldRegistry::Release(hold_slot_);
  hold_slot_ = -1;
  LockRankValidator::OnRelease(this);
}

void Mutex::FinishWait() {
  LockRankValidator::OnTryAcquire(rank_, name_, this);
  hold_slot_ = watchdog_visible_ ? obs::HoldRegistry::Claim(name_) : -1;
}

// ---------------------------------------------------------------------------
// SharedMutex

void SharedMutex::Lock() {
  LockRankValidator::OnAcquire(rank_, name_, this);
  int slot = watchdog_visible_ ? obs::HoldRegistry::Claim(name_) : -1;
  LockCharged(mu_, [this] { return mu_.try_lock(); }, [this] { mu_.lock(); });
  hold_slot_ = slot;
}

bool SharedMutex::TryLock() {
  if (!mu_.try_lock()) return false;
  LockRankValidator::OnTryAcquire(rank_, name_, this);
  hold_slot_ = watchdog_visible_ ? obs::HoldRegistry::Claim(name_) : -1;
  return true;
}

void SharedMutex::Unlock() {
  int slot = hold_slot_;
  hold_slot_ = -1;
  mu_.unlock();
  obs::HoldRegistry::Release(slot);
  LockRankValidator::OnRelease(this);
}

void SharedMutex::LockShared() {
  LockRankValidator::OnAcquire(rank_, name_, this, /*exclusive=*/false);
  LockCharged(mu_, [this] { return mu_.try_lock_shared(); },
              [this] { mu_.lock_shared(); });
}

bool SharedMutex::TryLockShared() {
  if (!mu_.try_lock_shared()) return false;
  LockRankValidator::OnTryAcquire(rank_, name_, this, /*exclusive=*/false);
  return true;
}

void SharedMutex::UnlockShared() {
  mu_.unlock_shared();
  LockRankValidator::OnRelease(this);
}

// ---------------------------------------------------------------------------
// CondVar

void CondVar::Wait(MutexLock& lock) {
  Mutex* mu = lock.mu_;
  mu->PrepareWait();
  // Adopt the already-held native mutex for the wait, then hand
  // ownership back so the wrapper's bookkeeping stays authoritative.
  std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
  cv_.wait(native);
  native.release();
  mu->FinishWait();
}

std::cv_status CondVar::WaitFor(MutexLock& lock,
                                std::chrono::nanoseconds timeout) {
  Mutex* mu = lock.mu_;
  mu->PrepareWait();
  std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
  std::cv_status status = cv_.wait_for(native, timeout);
  native.release();
  mu->FinishWait();
  return status;
}

// ---------------------------------------------------------------------------
// BackgroundWorker

void BackgroundWorker::Submit(std::function<void()> task) {
  MutexLock lock(mu_);
  if (stopping_) return;
  queue_.push_back(std::move(task));
  if (!started_) {
    started_ = true;
    thread_ = std::thread(&BackgroundWorker::Loop, this);
  }
  work_cv_.NotifyOne();
}

void BackgroundWorker::Drain() {
  MutexLock lock(mu_);
  while (!((queue_.empty() && !busy_) || stopping_)) {
    idle_cv_.Wait(lock);
  }
}

void BackgroundWorker::Stop() {
  std::thread worker;
  {
    MutexLock lock(mu_);
    stopping_ = true;
    queue_.clear();
    work_cv_.NotifyAll();
    idle_cv_.NotifyAll();
    // Move the handle out so the join below runs without the lock (the
    // exiting worker re-takes mu_ on its way out of Loop()).
    worker = std::move(thread_);
  }
  if (worker.joinable()) worker.join();
}

size_t BackgroundWorker::pending() const {
  MutexLock lock(mu_);
  return queue_.size();
}

void BackgroundWorker::Loop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (queue_.empty() && !stopping_) work_cv_.Wait(lock);
      if (stopping_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    task();
    {
      MutexLock lock(mu_);
      busy_ = false;
      if (queue_.empty()) idle_cv_.NotifyAll();
    }
  }
}

}  // namespace ode
