#ifndef ODEVIEW_DYNLINK_REPOSITORY_H_
#define ODEVIEW_DYNLINK_REPOSITORY_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dynlink/protocol.h"
#include "odb/schema.h"

namespace ode::dynlink {

/// A compiled display module "on disk": the unit the dynamic linker
/// loads. Keyed by (database, class, format).
struct DisplayModule {
  std::string db_name;
  std::string class_name;
  std::string format;        ///< "text", "picture", "postscript", ...
  DisplayFunction function;
  /// Simulated object-file size in bytes; drives the simulated load
  /// cost so cold-vs-warm benchmarks behave like real dynamic linking.
  size_t code_size = 32 * 1024;
};

/// The store of compiled display functions — the stand-in for the
/// filesystem of `.o` files the paper's scavenged dynamic linker read.
/// Class designers register modules here; OdeView never links them
/// statically (that would force recompiling OdeView on schema change).
class ModuleRepository {
 public:
  ModuleRepository() = default;

  /// Registers (or replaces) a module.
  Status Register(DisplayModule module);

  /// Removes every module of (db, class); returns how many.
  int Unregister(const std::string& db_name, const std::string& class_name);

  Result<const DisplayModule*> Find(const std::string& db_name,
                                    const std::string& class_name,
                                    const std::string& format) const;

  /// Formats registered for a class, registration order.
  std::vector<std::string> FormatsFor(const std::string& db_name,
                                      const std::string& class_name) const;

  /// Like Find, but display functions are member functions: a class
  /// inherits its ancestors' display modules. Resolution walks the
  /// class, then its ancestors in BFS order, returning the first
  /// registered module for `format` and the class it was found on.
  Result<const DisplayModule*> FindInherited(
      const odb::Schema& schema, const std::string& db_name,
      const std::string& class_name, const std::string& format) const;

  /// Formats available to a class including inherited ones (own
  /// formats first, then ancestors', deduplicated).
  std::vector<std::string> InheritedFormatsFor(
      const odb::Schema& schema, const std::string& db_name,
      const std::string& class_name) const;

  size_t size() const { return modules_.size(); }

 private:
  struct Key {
    std::string db;
    std::string cls;
    std::string format;
    bool operator<(const Key& o) const {
      if (db != o.db) return db < o.db;
      if (cls != o.cls) return cls < o.cls;
      return format < o.format;
    }
  };
  std::map<Key, DisplayModule> modules_;
  std::vector<Key> order_;  ///< registration order for FormatsFor
};

}  // namespace ode::dynlink

#endif  // ODEVIEW_DYNLINK_REPOSITORY_H_
