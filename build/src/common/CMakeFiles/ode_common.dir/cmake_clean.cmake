file(REMOVE_RECURSE
  "CMakeFiles/ode_common.dir/coding.cc.o"
  "CMakeFiles/ode_common.dir/coding.cc.o.d"
  "CMakeFiles/ode_common.dir/logging.cc.o"
  "CMakeFiles/ode_common.dir/logging.cc.o.d"
  "CMakeFiles/ode_common.dir/status.cc.o"
  "CMakeFiles/ode_common.dir/status.cc.o.d"
  "CMakeFiles/ode_common.dir/strings.cc.o"
  "CMakeFiles/ode_common.dir/strings.cc.o.d"
  "libode_common.a"
  "libode_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ode_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
