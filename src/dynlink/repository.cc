#include "dynlink/repository.h"

#include <algorithm>

namespace ode::dynlink {

std::string_view WindowKindName(WindowKind kind) {
  switch (kind) {
    case WindowKind::kStaticText:
      return "static-text";
    case WindowKind::kScrollText:
      return "scroll-text";
    case WindowKind::kRasterImage:
      return "raster-image";
  }
  return "?";
}

bool AttributeSelected(const std::vector<std::string>& attributes,
                       const std::vector<bool>& mask,
                       std::string_view attr) {
  if (mask.empty()) return true;
  for (size_t i = 0; i < attributes.size() && i < mask.size(); ++i) {
    if (attributes[i] == attr) return mask[i];
  }
  // Attribute not in the displaylist: visible only with no projection.
  return false;
}

Status ModuleRepository::Register(DisplayModule module) {
  if (module.db_name.empty() || module.class_name.empty() ||
      module.format.empty()) {
    return Status::InvalidArgument(
        "module key (db, class, format) must be non-empty");
  }
  if (!module.function) {
    return Status::InvalidArgument("module has no display function");
  }
  Key key{module.db_name, module.class_name, module.format};
  if (modules_.find(key) == modules_.end()) {
    order_.push_back(key);
  }
  modules_[key] = std::move(module);
  return Status::OK();
}

int ModuleRepository::Unregister(const std::string& db_name,
                                 const std::string& class_name) {
  int removed = 0;
  for (auto it = modules_.begin(); it != modules_.end();) {
    if (it->first.db == db_name && it->first.cls == class_name) {
      it = modules_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  order_.erase(std::remove_if(order_.begin(), order_.end(),
                              [&](const Key& k) {
                                return k.db == db_name &&
                                       k.cls == class_name;
                              }),
               order_.end());
  return removed;
}

Result<const DisplayModule*> ModuleRepository::Find(
    const std::string& db_name, const std::string& class_name,
    const std::string& format) const {
  auto it = modules_.find(Key{db_name, class_name, format});
  if (it == modules_.end()) {
    return Status::NotFound("no display module for " + db_name + "/" +
                            class_name + "/" + format);
  }
  return &it->second;
}

std::vector<std::string> ModuleRepository::FormatsFor(
    const std::string& db_name, const std::string& class_name) const {
  std::vector<std::string> out;
  for (const Key& key : order_) {
    if (key.db == db_name && key.cls == class_name) {
      out.push_back(key.format);
    }
  }
  return out;
}

Result<const DisplayModule*> ModuleRepository::FindInherited(
    const odb::Schema& schema, const std::string& db_name,
    const std::string& class_name, const std::string& format) const {
  Result<const DisplayModule*> own = Find(db_name, class_name, format);
  if (own.ok() || !own.status().IsNotFound()) return own;
  Result<std::vector<std::string>> ancestors =
      schema.Ancestors(class_name);
  if (ancestors.ok()) {
    for (const std::string& ancestor : *ancestors) {
      Result<const DisplayModule*> inherited =
          Find(db_name, ancestor, format);
      if (inherited.ok() || !inherited.status().IsNotFound()) {
        return inherited;
      }
    }
  }
  return Status::NotFound("no display module for " + db_name + "/" +
                          class_name + "/" + format +
                          " (own or inherited)");
}

std::vector<std::string> ModuleRepository::InheritedFormatsFor(
    const odb::Schema& schema, const std::string& db_name,
    const std::string& class_name) const {
  std::vector<std::string> out = FormatsFor(db_name, class_name);
  Result<std::vector<std::string>> ancestors =
      schema.Ancestors(class_name);
  if (ancestors.ok()) {
    for (const std::string& ancestor : *ancestors) {
      for (const std::string& format : FormatsFor(db_name, ancestor)) {
        if (std::find(out.begin(), out.end(), format) == out.end()) {
          out.push_back(format);
        }
      }
    }
  }
  return out;
}

}  // namespace ode::dynlink
