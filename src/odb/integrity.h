#ifndef ODEVIEW_ODB_INTEGRITY_H_
#define ODEVIEW_ODB_INTEGRITY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "odb/database.h"

namespace ode::odb {

/// One referential-integrity problem found by `CheckIntegrity`.
struct IntegrityIssue {
  enum class Kind : uint8_t {
    kDanglingReference,   ///< ref to a deleted / never-existing object
    kWrongClassReference, ///< ref whose target's class is incompatible
    kTypeMismatch,        ///< stored value fails the class's type check
  };

  Kind kind = Kind::kDanglingReference;
  Oid holder;          ///< the object containing the bad value
  std::string member;  ///< dotted path of the offending attribute
  Oid target;          ///< the referenced OID (reference kinds)
  std::string detail;

  std::string ToString() const;
};

/// Scans every cluster and verifies that each stored object still
/// type-checks against its class and that every embedded reference
/// resolves to a live object of a compatible class. Browsing tolerates
/// dangling references (an object window shows "<no object>"), but a
/// database owner can use this to find them after deletions.
Result<std::vector<IntegrityIssue>> CheckIntegrity(Database* db);

}  // namespace ode::odb

#endif  // ODEVIEW_ODB_INTEGRITY_H_
