#ifndef ODEVIEW_OWL_GEOMETRY_H_
#define ODEVIEW_OWL_GEOMETRY_H_

#include <algorithm>
#include <cstdint>
#include <string>

namespace ode::owl {

/// A point in character-cell coordinates (x = column, y = row).
struct Point {
  int x = 0;
  int y = 0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
  Point operator+(const Point& o) const { return Point{x + o.x, y + o.y}; }
};

/// Width/height in character cells.
struct Size {
  int width = 0;
  int height = 0;

  friend bool operator==(const Size& a, const Size& b) {
    return a.width == b.width && a.height == b.height;
  }
};

/// An axis-aligned rectangle: origin + size.
struct Rect {
  int x = 0;
  int y = 0;
  int width = 0;
  int height = 0;

  Point origin() const { return Point{x, y}; }
  Size size() const { return Size{width, height}; }
  int right() const { return x + width; }    ///< one past the last column
  int bottom() const { return y + height; }  ///< one past the last row

  bool Contains(Point p) const {
    return p.x >= x && p.x < right() && p.y >= y && p.y < bottom();
  }

  bool Intersects(const Rect& o) const {
    return x < o.right() && o.x < right() && y < o.bottom() && o.y < bottom();
  }

  Rect Intersection(const Rect& o) const {
    int nx = std::max(x, o.x);
    int ny = std::max(y, o.y);
    int nr = std::min(right(), o.right());
    int nb = std::min(bottom(), o.bottom());
    if (nr <= nx || nb <= ny) return Rect{};
    return Rect{nx, ny, nr - nx, nb - ny};
  }

  Rect Translated(Point by) const {
    return Rect{x + by.x, y + by.y, width, height};
  }

  bool Empty() const { return width <= 0 || height <= 0; }

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.x == b.x && a.y == b.y && a.width == b.width &&
           a.height == b.height;
  }

  std::string ToString() const {
    return std::to_string(width) + "x" + std::to_string(height) + "+" +
           std::to_string(x) + "+" + std::to_string(y);
  }
};

}  // namespace ode::owl

#endif  // ODEVIEW_OWL_GEOMETRY_H_
