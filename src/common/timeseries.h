#ifndef ODEVIEW_COMMON_TIMESERIES_H_
#define ODEVIEW_COMMON_TIMESERIES_H_

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/threading.h"

namespace ode::obs {

/// One sampled point of one metric. Counters/gauges fill `value`;
/// histograms fill `count` plus the registry's windowed quantiles.
struct TimeSeriesPoint {
  uint64_t ts_ns = 0;
  int64_t value = 0;     ///< cumulative counter / gauge value
  uint64_t count = 0;    ///< histogram sample count
  uint64_t p50 = 0;      ///< histogram quantile trajectory
  uint64_t p95 = 0;
  uint64_t p99 = 0;
};

/// The retained history of one metric, oldest first.
struct TimeSeries {
  std::string name;
  MetricSample::Kind kind = MetricSample::Kind::kCounter;
  std::vector<TimeSeriesPoint> points;
};

/// In-process metrics history: a background tick snapshots the global
/// `Registry` every `resolution_ns` and folds every instrument into a
/// fixed-size ring (default 5 s × 120 slots = 10 minutes), turning the
/// telemetry endpoint from point-in-time into trended. Rates are
/// derived on export (delta of cumulative counters between adjacent
/// points over their time gap); histogram points carry the quantile
/// trajectory — the windowed view when a window has samples, else the
/// cumulative one.
///
/// Locking: one mutex (`kTimeSeries`, rank 182) guards the rings and
/// the tick-thread state. The fold acquires the metrics registry
/// (rank 200) inside it, which is legal ascending order; the charge
/// paths never touch this store, so the engine is unaffected.
class TimeSeriesStore {
 public:
  static constexpr uint64_t kDefaultResolutionNs = 5ull * 1000 * 1000 * 1000;
  static constexpr size_t kDefaultSlots = 120;

  explicit TimeSeriesStore(uint64_t resolution_ns = kDefaultResolutionNs,
                           size_t slots = kDefaultSlots);
  ~TimeSeriesStore();
  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  /// The process-wide store (leaked; idle until `Start`).
  static TimeSeriesStore& Global();

  /// Reconfigures resolution/capacity and clears history. Fails with
  /// `kFailedPrecondition` while the tick thread is running.
  Status Configure(uint64_t resolution_ns, size_t slots);

  /// Spawns the background tick thread (no-op if already running).
  void Start();
  /// Stops and joins the tick thread (history is retained).
  void Stop();
  bool running() const;

  /// Takes one snapshot-and-fold synchronously on the calling thread —
  /// deterministic test mode and a way to prime the history before a
  /// scrape.
  void TickOnce();

  uint64_t resolution_ns() const;
  size_t slots() const;
  /// Ticks folded since construction / last Configure.
  uint64_t tick_count() const;

  /// Retained history of `name` (empty series if unknown).
  TimeSeries Series(const std::string& name) const;

  /// The `/timeseries` document: every tracked series with its points,
  /// plus per-point rates for counters.
  std::string RenderJson() const;

  /// Stops the thread and clears all history and configuration.
  void ResetForTest();

 private:
  struct Ring {
    MetricSample::Kind kind = MetricSample::Kind::kCounter;
    std::vector<TimeSeriesPoint> points;  ///< ring, wraps at slots_
    size_t next = 0;
    size_t size = 0;
  };

  void Fold(const std::vector<MetricSample>& samples, uint64_t now_ns)
      ODE_REQUIRES(mu_);
  /// Oldest-first copy of one ring. Caller holds `mu_`.
  static std::vector<TimeSeriesPoint> Unroll(const Ring& ring);
  void Loop();

  mutable Mutex mu_{LockRank::kTimeSeries};
  CondVar wake_cv_;
  uint64_t resolution_ns_ ODE_GUARDED_BY(mu_);
  size_t slots_ ODE_GUARDED_BY(mu_);
  std::map<std::string, Ring> series_ ODE_GUARDED_BY(mu_);
  uint64_t ticks_ ODE_GUARDED_BY(mu_) = 0;
  std::thread thread_ ODE_GUARDED_BY(mu_);
  bool running_ ODE_GUARDED_BY(mu_) = false;
  bool stopping_ ODE_GUARDED_BY(mu_) = false;
};

}  // namespace ode::obs

#endif  // ODEVIEW_COMMON_TIMESERIES_H_
