# Empty dependencies file for ode_odeview.
# This may be replaced when dependencies are built.
