#ifndef ODEVIEW_ODB_PAGER_H_
#define ODEVIEW_ODB_PAGER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "common/threading.h"
#include "common/status.h"
#include "odb/page.h"

namespace ode::odb {

/// Abstract page-granular storage: the bottom of the storage stack.
///
/// Two backends exist: `MemPager` (volatile, for tests and scratch
/// databases) and `FilePager` (a single database file). All I/O above
/// this layer goes through the `BufferPool`. Implementations must be
/// safe for concurrent calls from multiple threads; the buffer pool
/// additionally serializes accesses to any single page id through that
/// page's shard, so per-page ordering is never an implementation's
/// problem.
class Pager {
 public:
  virtual ~Pager() = default;

  Pager() = default;
  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Appends a zeroed page and returns its id.
  virtual Result<PageId> Allocate() = 0;
  /// Reads page `id` into `*page`; fails for out-of-range ids.
  virtual Status Read(PageId id, Page* page) = 0;
  /// Writes `page` at `id`. A write exactly at `page_count()` extends
  /// the store by one page; ids beyond that fail.
  virtual Status Write(PageId id, const Page& page) = 0;
  /// Number of pages currently allocated.
  virtual uint32_t page_count() const = 0;
  /// Forces durability of previous writes (no-op for MemPager).
  virtual Status Sync() = 0;
};

/// In-memory pager. A single mutex guards the page vector; page
/// copies in and out happen under it, which is plenty for the
/// cache-miss path it serves.
class MemPager final : public Pager {
 public:
  MemPager() = default;

  Result<PageId> Allocate() override;
  Status Read(PageId id, Page* page) override;
  Status Write(PageId id, const Page& page) override;
  uint32_t page_count() const override;
  Status Sync() override { return Status::OK(); }

 private:
  /// MemPager and FilePager's extend lock share LockRank::kPager: one
  /// pager backs one pool, so the two are never nested.
  mutable Mutex mu_{LockRank::kPager, "pager.mem_lock"};
  std::vector<std::unique_ptr<Page>> pages_ ODE_GUARDED_BY(mu_);
};

/// File-backed pager over a single database file. Reads and writes use
/// positional `pread`/`pwrite`, so concurrent threads never race on a
/// shared file offset; only the extend path (allocation / appending
/// writes) takes a mutex.
class FilePager final : public Pager {
 public:
  /// Opens (or creates with `create`) the file at `path`.
  static Result<std::unique_ptr<FilePager>> Open(const std::string& path,
                                                 bool create);
  ~FilePager() override;

  Result<PageId> Allocate() override;
  Status Read(PageId id, Page* page) override;
  Status Write(PageId id, const Page& page) override;
  uint32_t page_count() const override;
  Status Sync() override;

 private:
  FilePager(int fd, uint32_t page_count, std::string path)
      : fd_(fd), page_count_(page_count), path_(std::move(path)) {}

  /// Full-page positional write at `id` (loops over short writes).
  Status WriteAt(PageId id, const Page& page);

  int fd_;
  std::atomic<uint32_t> page_count_;
  std::string path_;
  /// Serializes file growth (Allocate / first write of a fresh page).
  Mutex extend_mu_{LockRank::kPager, "pager.extend_lock"};
};

}  // namespace ode::odb

#endif  // ODEVIEW_ODB_PAGER_H_
