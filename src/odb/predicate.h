#ifndef ODEVIEW_ODB_PREDICATE_H_
#define ODEVIEW_ODB_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "odb/value.h"

namespace ode::odb {

/// Comparison operators usable in selection predicates.
enum class CompareOp : uint8_t {
  kEq = 0,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kContains,  ///< substring for strings; membership for sets/arrays
};

std::string_view CompareOpName(CompareOp op);

/// One operand of a comparison: either an attribute path into the
/// object ("dept.name") or a literal value.
struct Operand {
  enum class Kind : uint8_t { kAttribute, kLiteral };
  Kind kind = Kind::kLiteral;
  std::string path;  ///< dotted attribute path (kAttribute)
  Value literal;     ///< (kLiteral)

  static Operand Attribute(std::string p) {
    Operand o;
    o.kind = Kind::kAttribute;
    o.path = std::move(p);
    return o;
  }
  static Operand Literal(Value v) {
    Operand o;
    o.kind = Kind::kLiteral;
    o.literal = std::move(v);
    return o;
  }
};

/// A boolean predicate over an object's attribute values.
///
/// Built either programmatically (the menu-based predicate builder of
/// §5.2) or by parsing a QBE-style condition string ("age > 30 &&
/// dept.name == \"research\"") via `ParsePredicate`.
class Predicate {
 public:
  enum class Kind : uint8_t { kTrue, kCompare, kAnd, kOr, kNot };

  /// The always-true predicate (an empty condition box).
  static Predicate True();
  static Predicate Compare(Operand lhs, CompareOp op, Operand rhs);
  static Predicate And(Predicate lhs, Predicate rhs);
  static Predicate Or(Predicate lhs, Predicate rhs);
  static Predicate Not(Predicate operand);

  Predicate(const Predicate&) = default;
  Predicate(Predicate&&) noexcept = default;
  Predicate& operator=(const Predicate&) = default;
  Predicate& operator=(Predicate&&) noexcept = default;

  Kind kind() const { return kind_; }

  /// kCompare structure (meaningful only when kind() == kCompare).
  const Operand& compare_lhs() const { return lhs_; }
  CompareOp compare_op() const { return op_; }
  const Operand& compare_rhs() const { return rhs_; }

  /// kAnd / kOr children (two) or the kNot operand (one).
  const std::vector<Predicate>& children() const { return children_; }

  /// Evaluates against `object` (normally a struct value).
  ///
  /// A missing attribute makes the enclosing comparison false rather
  /// than an error (QBE semantics); type mismatches (comparing a
  /// string to a number with `<`) are errors.
  Result<bool> Evaluate(const Value& object) const;

  /// Attribute paths mentioned anywhere in the predicate.
  std::vector<std::string> AttributePaths() const;

  /// Source-like rendering ("(age > 30) && (name == \"amy\")").
  std::string ToString() const;

 private:
  Predicate() = default;

  Kind kind_ = Kind::kTrue;
  // kCompare
  Operand lhs_;
  CompareOp op_ = CompareOp::kEq;
  Operand rhs_;
  // kAnd / kOr / kNot (children_[0], children_[1])
  std::vector<Predicate> children_;
};

/// Three-way ordering used by the relational operators: numeric across
/// bool/int/real, lexicographic for strings, an error for any other
/// kind pairing.
Result<int> OrderValues(const Value& a, const Value& b);

/// Applies `op` to two resolved operands. Either pointer may be null
/// (a missing attribute), which makes the comparison false rather than
/// an error — QBE semantics. Shared by the tree-walking
/// `Predicate::Evaluate` and the batched executor's compiled form so
/// the two paths cannot drift apart.
Result<bool> EvaluateCompareOp(const Value* lhs, CompareOp op,
                               const Value* rhs);

/// Parses a condition-box string into a predicate. Grammar:
/// ```
/// expr   := or
/// or     := and { "||" and }
/// and    := unary { "&&" unary }
/// unary  := "!" unary | "(" expr ")" | cmp
/// cmp    := operand op operand
/// op     := == | != | < | <= | > | >= | contains
/// operand:= INT | REAL | STRING | true | false | null | path
/// path   := IDENT { "." IDENT }
/// ```
Result<Predicate> ParsePredicate(std::string_view text);

}  // namespace ode::odb

#endif  // ODEVIEW_ODB_PREDICATE_H_
