#ifndef ODEVIEW_OWL_WINDOW_H_
#define ODEVIEW_OWL_WINDOW_H_

#include <functional>
#include <memory>
#include <string>

#include "owl/event.h"
#include "owl/widget.h"

namespace ode::owl {

/// A top-level window: a titled frame around a root widget tree.
///
/// Coordinates: the window occupies `content_size() + 2` cells in each
/// dimension on screen (one-cell frame); event positions arriving in
/// `HandleEvent` are window-local (0,0 = top-left frame corner) and are
/// translated into content coordinates before dispatch.
class Window {
 public:
  Window(WindowId id, std::string title, Point origin, Size content_size);

  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;

  WindowId id() const { return id_; }
  const std::string& title() const { return title_; }
  void set_title(std::string title) { title_ = std::move(title); }

  Point origin() const { return origin_; }
  void set_origin(Point origin) { origin_ = origin; }

  Size content_size() const { return content_size_; }
  void set_content_size(Size size);

  /// Outer frame rectangle in screen coordinates.
  Rect FrameRect() const {
    return Rect{origin_.x, origin_.y, content_size_.width + 2,
                content_size_.height + 2};
  }

  /// Open = mapped/visible; a closed window keeps its widget tree (the
  /// paper refreshes closed windows too during synchronized browsing).
  bool open() const { return open_; }
  void set_open(bool open) { open_ = open; }

  /// Root of the widget tree (a borderless container).
  Widget* root() { return root_.get(); }
  const Widget* root() const { return root_.get(); }

  /// Name lookup across this window's widget tree.
  Widget* FindWidget(std::string_view name) { return root_->FindWidget(name); }

  /// Widget receiving key events.
  void set_focus(Widget* widget) { focus_ = widget; }
  Widget* focus() const { return focus_; }

  /// Invoked when a CloseRequest event arrives.
  void set_on_close(std::function<void()> cb) { on_close_ = std::move(cb); }

  /// Handles one event (positions window-local). Returns true if it
  /// was consumed.
  bool HandleEvent(const Event& event);

  /// Draws the frame, title, and content into `fb` at the window's
  /// screen origin.
  void Render(Framebuffer* fb) const;

 private:
  WindowId id_;
  std::string title_;
  Point origin_;
  Size content_size_;
  bool open_ = true;
  std::unique_ptr<Widget> root_;
  Widget* focus_ = nullptr;
  std::function<void()> on_close_;
};

}  // namespace ode::owl

#endif  // ODEVIEW_OWL_WINDOW_H_
