// Flight-recorder battery: causal trace propagation (within and across
// threads), the structured event journal, watchdog stall detection,
// Prometheus name hardening, and the telemetry HTTP endpoint.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/access_log.h"
#include "common/journal.h"
#include "common/metrics.h"
#include "common/telemetry_http.h"
#include "common/timeseries.h"
#include "common/trace.h"
#include "common/watchdog.h"
#include "dynlink/lab_modules.h"
#include "odb/buffer_pool.h"
#include "odb/labdb.h"
#include "odeview/app.h"

namespace ode::obs {
namespace {

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracing::Clear();
    Tracing::Enable();
  }
  void TearDown() override {
    Tracing::Disable();
    Tracing::Clear();
  }
};

// --- Causal trace propagation ----------------------------------------

TEST_F(FlightRecorderTest, NestedSpansLinkToParents) {
  {
    ODE_TRACE_SPAN("outer");
    ODE_TRACE_SPAN("inner");
  }
  std::vector<TraceEvent> events = Tracing::SnapshotEvents();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent& inner =
      std::string(events[0].name) == "inner" ? events[0] : events[1];
  const TraceEvent& outer =
      std::string(events[0].name) == "outer" ? events[0] : events[1];
  EXPECT_NE(outer.trace_id, 0u);
  EXPECT_NE(outer.span_id, 0u);
  EXPECT_EQ(outer.parent_id, 0u);  // fresh root
  EXPECT_EQ(inner.trace_id, outer.trace_id);
  EXPECT_EQ(inner.parent_id, outer.span_id);
  EXPECT_NE(inner.span_id, outer.span_id);
}

TEST_F(FlightRecorderTest, SiblingSpansShareParentNotIds) {
  {
    ODE_TRACE_SPAN("parent");
    { ODE_TRACE_SPAN("a"); }
    { ODE_TRACE_SPAN("b"); }
  }
  std::unordered_map<std::string, TraceEvent> by_name;
  for (const TraceEvent& e : Tracing::SnapshotEvents()) by_name[e.name] = e;
  ASSERT_EQ(by_name.size(), 3u);
  EXPECT_EQ(by_name["a"].parent_id, by_name["parent"].span_id);
  EXPECT_EQ(by_name["b"].parent_id, by_name["parent"].span_id);
  EXPECT_NE(by_name["a"].span_id, by_name["b"].span_id);
}

TEST_F(FlightRecorderTest, CurrentContextTracksOpenSpan) {
  EXPECT_FALSE(CurrentTraceContext().valid());
  {
    ODE_TRACE_SPAN("scope");
    TraceContext ctx = CurrentTraceContext();
    EXPECT_TRUE(ctx.valid());
    EXPECT_NE(ctx.span_id, 0u);
  }
  EXPECT_FALSE(CurrentTraceContext().valid());
}

TEST_F(FlightRecorderTest, CrossThreadCaptureAndAdopt) {
  TraceContext captured;
  {
    ODE_TRACE_SPAN("producer");
    captured = CurrentTraceContext();
    std::thread worker([captured] {
      TraceContextScope adopt(captured);
      ODE_TRACE_SPAN("consumer");
    });
    worker.join();
  }
  std::unordered_map<std::string, TraceEvent> by_name;
  for (const TraceEvent& e : Tracing::SnapshotEvents()) by_name[e.name] = e;
  ASSERT_EQ(by_name.size(), 2u);
  EXPECT_EQ(by_name["consumer"].trace_id, by_name["producer"].trace_id);
  EXPECT_EQ(by_name["consumer"].parent_id, by_name["producer"].span_id);
  EXPECT_NE(by_name["consumer"].thread_id, by_name["producer"].thread_id);
}

TEST_F(FlightRecorderTest, AdoptingDetachedContextStartsFreshTrace) {
  ODE_TRACE_SPAN("ambient");
  uint64_t ambient_trace = CurrentTraceContext().trace_id;
  {
    TraceContextScope detach{TraceContext{}};
    ODE_TRACE_SPAN("detached");
  }
  for (const TraceEvent& e : Tracing::SnapshotEvents()) {
    if (std::string(e.name) == "detached") {
      EXPECT_NE(e.trace_id, ambient_trace);
      EXPECT_EQ(e.parent_id, 0u);
    }
  }
}

TEST_F(FlightRecorderTest, PrefetchWorkerJoinsCallerTrace) {
  odb::MemPager pager;
  odb::PageId id = 0;
  {
    odb::BufferPool writer_pool(&pager, /*capacity=*/8);
    Result<odb::PageHandle> page = writer_pool.NewPage();
    ASSERT_TRUE(page.ok());
    id = page->id();
    page->MarkDirty();
    page->Release();
    ASSERT_TRUE(writer_pool.FlushAll().ok());
  }
  // A fresh pool: the page exists in the pager but is not cached, so
  // the prefetch actually dispatches to the worker thread.
  odb::BufferPool pool(&pager, /*capacity=*/8);
  Tracing::Clear();
  uint64_t caller_trace = 0;
  {
    ODE_TRACE_SPAN("caller");
    caller_trace = CurrentTraceContext().trace_id;
    pool.Prefetch(id);
    pool.WaitForPrefetches();
  }
  bool saw_prefetch_fetch = false;
  for (const TraceEvent& e : Tracing::SnapshotEvents()) {
    if (std::string(e.name) == "pool.fetch" && e.trace_id == caller_trace) {
      saw_prefetch_fetch = true;
      EXPECT_NE(e.parent_id, 0u);
    }
  }
  EXPECT_TRUE(saw_prefetch_fetch)
      << "prefetch worker's fetch span did not adopt the caller's context";
}

// --- The acceptance criterion: a browse cascade's span tree ----------

// Walks parent links from `event` up to the root; true if `ancestor`
// is on the path.
bool DescendsFrom(const TraceEvent& event, uint64_t ancestor_span,
                  const std::unordered_map<uint64_t, TraceEvent>& by_span) {
  uint64_t parent = event.parent_id;
  for (int hops = 0; parent != 0 && hops < 256; ++hops) {
    if (parent == ancestor_span) return true;
    auto it = by_span.find(parent);
    if (it == by_span.end()) return false;
    parent = it->second.parent_id;
  }
  return false;
}

TEST_F(FlightRecorderTest, CascadeSpansFormOneTreePerGesture) {
  auto db = std::move(*odb::Database::CreateInMemory("lab"));
  ASSERT_TRUE(odb::BuildLabDatabase(db.get()).ok());
  view::OdeViewApp app(200, 80);
  ASSERT_TRUE(dynlink::RegisterLabDisplayModules(app.repository(), "lab",
                                                 db->schema())
                  .ok());
  ASSERT_TRUE(app.AddDatabaseBorrowed(db.get()).ok());
  ASSERT_TRUE(app.OpenInitialWindow().ok());
  // Tracing is on (fixture), so the session opened here gets a causal
  // anchor for its gestures.
  Result<view::DbInteractor*> interactor = app.OpenDatabase("lab");
  ASSERT_TRUE(interactor.ok());
  Result<view::BrowseNode*> node = (*interactor)->OpenObjectSet("employee");
  ASSERT_TRUE(node.ok());
  // A child window: its per-cascade re-resolution fetches objects
  // *inside* the cascade span.
  ASSERT_TRUE((*node)->Next().ok());
  Result<view::BrowseNode*> dept = (*node)->FollowReference("dept");
  ASSERT_TRUE(dept.ok());

  Tracing::Clear();
  ASSERT_TRUE((*node)->Next().ok());

  std::vector<TraceEvent> events = Tracing::SnapshotEvents();
  std::unordered_map<uint64_t, TraceEvent> by_span;
  for (const TraceEvent& e : events) by_span[e.span_id] = e;

  const TraceEvent* cascade = nullptr;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "view.sync_cascade") {
      cascade = &e;
      break;
    }
  }
  ASSERT_NE(cascade, nullptr);
  // The cascade hangs off the session anchor, never floats free.
  EXPECT_NE(cascade->parent_id, 0u);
  EXPECT_NE(cascade->trace_id, 0u);

  // Every storage-layer span recorded during the cascade's lifetime is
  // a descendant of the cascade span.
  uint64_t cascade_start = cascade->start_ns;
  uint64_t cascade_end = cascade->start_ns + cascade->duration_ns;
  int checked = 0;
  for (const TraceEvent& e : events) {
    std::string name = e.name;
    if (name != "pool.fetch" && name != "db.get_object") continue;
    if (e.start_ns < cascade_start || e.start_ns > cascade_end) continue;
    ++checked;
    EXPECT_TRUE(DescendsFrom(e, cascade->span_id, by_span))
        << name << " span " << e.span_id << " inside the cascade window "
        << "does not descend from the cascade span";
  }
  EXPECT_GT(checked, 0) << "no storage spans inside the cascade — the "
                           "child re-resolution should have fetched";

  // Same property re-verified through the JSON export (what CI and
  // chrome://tracing consume).
  std::string json = Tracing::ExportChromeJson();
  EXPECT_NE(json.find("\"view.sync_cascade\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\":" + std::to_string(cascade->parent_id)),
            std::string::npos);
}

// --- Chrome trace export well-formedness -----------------------------

// Minimal recursive-descent JSON validator: accepts exactly the RFC
// 8259 value grammar (no trailing garbage), which is what
// chrome://tracing requires of the export.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool Validate() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (std::strchr("\"\\/bfnrt", esc) == nullptr) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }
  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(text_[pos_ - 1]));
  }
  bool Literal(const char* word) {
    size_t len = std::strlen(word);
    if (text_.substr(pos_, len) != word) return false;
    pos_ += len;
    return true;
  }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

TEST_F(FlightRecorderTest, ChromeTraceExportIsWellFormedJson) {
  {
    ODE_TRACE_SPAN("export.root");
    { ODE_TRACE_SPAN("export.child \"quoted\"\n"); }
    { ODE_TRACE_SPAN("export.sibling"); }
  }
  std::string json = Tracing::ExportChromeJson();
  EXPECT_TRUE(JsonValidator(json).Validate())
      << "export is not valid JSON:\n" << json;

  // Every emitted event is a complete-duration ("ph":"X") event — there
  // are no begin/end pairs to mismatch — and each carries the causal
  // identity (trace/span/parent) in its args.
  size_t events = 0, complete = 0, with_ids = 0;
  for (size_t at = json.find("{\"name\""); at != std::string::npos;
       at = json.find("{\"name\"", at + 1)) {
    ++events;
    size_t end = json.find('}', at);  // args is the last, nested object
    ASSERT_NE(end, std::string::npos);
    std::string_view event(json.data() + at, end - at + 1);
    if (event.find("\"ph\":\"X\"") != std::string_view::npos) ++complete;
    if (event.find("\"trace\":") != std::string_view::npos &&
        event.find("\"span\":") != std::string_view::npos &&
        event.find("\"parent\":") != std::string_view::npos) {
      ++with_ids;
    }
  }
  EXPECT_EQ(events, 3u);
  EXPECT_EQ(complete, events);
  EXPECT_EQ(with_ids, events);
  // Both spans of one gesture share the root's trace id.
  std::vector<TraceEvent> raw = Tracing::SnapshotEvents();
  ASSERT_FALSE(raw.empty());
  EXPECT_NE(json.find("\"trace\":" + std::to_string(raw[0].trace_id)),
            std::string::npos);
}

TEST_F(FlightRecorderTest, ChromeTraceExportEmptyRingIsStillValid) {
  Tracing::Clear();
  std::string json = Tracing::ExportChromeJson();
  EXPECT_TRUE(JsonValidator(json).Validate()) << json;
  EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
}

// --- Journal ---------------------------------------------------------

TEST(JournalTest, RetainsNewestTailAfterWrap) {
  Journal journal(/*capacity=*/64);
  EXPECT_EQ(journal.capacity(), 64u);
  for (int i = 0; i < 128; ++i) {
    journal.Append(JournalEvent::kMark, i);
  }
  EXPECT_EQ(journal.appended(), 128u);
  EXPECT_EQ(journal.dropped(), 0u);
  std::vector<JournalRecord> tail = journal.Snapshot();
  ASSERT_EQ(tail.size(), 64u);
  // Oldest-first, strictly sequential, and exactly the newest half.
  for (size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].seq, 65 + i);
    EXPECT_EQ(tail[i].arg0, static_cast<int64_t>(64 + i));
    EXPECT_EQ(tail[i].type, JournalEvent::kMark);
  }
}

TEST(JournalTest, CapacityRoundsUpToPowerOfTwo) {
  Journal journal(/*capacity=*/100);
  EXPECT_EQ(journal.capacity(), 128u);
  Journal tiny(/*capacity=*/1);
  EXPECT_EQ(tiny.capacity(), 8u);
}

TEST(JournalTest, RecordsCarryTraceContext) {
  Tracing::Clear();
  Tracing::Enable();
  Journal journal(/*capacity=*/16);
  journal.Append(JournalEvent::kMark, 1);  // outside any span
  uint64_t span_id = 0;
  {
    ODE_TRACE_SPAN("journal.ctx");
    span_id = CurrentTraceContext().span_id;
    journal.Append(JournalEvent::kMark, 2);
  }
  std::vector<JournalRecord> tail = journal.Snapshot();
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].span_id, 0u);
  EXPECT_EQ(tail[1].span_id, span_id);
  EXPECT_NE(tail[1].trace_id, 0u);
  Tracing::Disable();
  Tracing::Clear();
}

TEST(JournalTest, ExportJsonLinesIsWellFormed) {
  Journal journal(/*capacity=*/16);
  journal.Append(JournalEvent::kSessionOpen, 7);
  journal.Append(JournalEvent::kCascadeStart, 3, 2,
                 Journal::InternLabel("employee"));
  journal.Append(JournalEvent::kMark, 0, 0,
                 Journal::InternLabel("needs \"escaping\"\n"));
  std::string lines = journal.ExportJsonLines();
  // One line per record, each a JSON object, plus the loss-accounting
  // trailer (`journal_stats`).
  size_t newlines = 0;
  for (char c : lines) newlines += c == '\n';
  EXPECT_EQ(newlines, 4u);
  EXPECT_NE(lines.find("\"type\":\"session_open\""), std::string::npos);
  EXPECT_NE(lines.find("\"type\":\"journal_stats\""), std::string::npos);
  EXPECT_NE(lines.find("\"appended\":3"), std::string::npos);
  EXPECT_NE(lines.find("\"dropped\":0"), std::string::npos);
  EXPECT_NE(lines.find("\"overwritten\":0"), std::string::npos);
  EXPECT_NE(lines.find("\"type\":\"cascade_start\""), std::string::npos);
  EXPECT_NE(lines.find("\"detail\":\"employee\""), std::string::npos);
  // The quote and newline inside the label arrive escaped.
  EXPECT_NE(lines.find("needs \\\"escaping\\\"\\n"), std::string::npos);
}

TEST(JournalTest, ExportPublishesLossCountersIntoRegistry) {
  Counter* appended = Registry::Global().counter("obs.journal.appended");
  uint64_t before = appended->value();
  Journal::Global().Append(JournalEvent::kMark, 0, 0,
                           Journal::InternLabel("loss-metrics-probe"));
  Journal::Global().Append(JournalEvent::kMark, 1);
  std::string lines = Journal::Global().ExportJsonLines();
  EXPECT_NE(lines.find("\"type\":\"journal_stats\""), std::string::npos);
  // The export moved the registry counter forward by at least the two
  // appends above (the watermark is monotone, so repeated exports do
  // not double-count).
  uint64_t after = appended->value();
  EXPECT_GE(after, before + 2);
  (void)Journal::Global().ExportJsonLines();
  EXPECT_EQ(appended->value(), after);
}

TEST(JournalTest, InternLabelIsStableAndDeduplicated) {
  const char* a = Journal::InternLabel("stable-label");
  std::string copy = "stable-";
  copy += "label";  // different buffer, same contents
  const char* b = Journal::InternLabel(copy);
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "stable-label");
}

TEST(JournalTest, RenderTextShowsNewestRecords) {
  Journal journal(/*capacity=*/16);
  for (int i = 0; i < 5; ++i) journal.Append(JournalEvent::kEpochBump, i);
  std::string text = journal.RenderText(/*max_records=*/3);
  EXPECT_NE(text.find("epoch_bump"), std::string::npos);
  EXPECT_NE(text.find("#5"), std::string::npos);
  EXPECT_EQ(text.find("#1 "), std::string::npos);  // truncated away
}

// --- Metric-name hardening -------------------------------------------

TEST(MetricNameTest, ValidationRules) {
  EXPECT_TRUE(IsValidMetricName("pool.fetch.hits"));
  EXPECT_TRUE(IsValidMetricName("watchdog_stalls_total"));
  EXPECT_TRUE(IsValidMetricName("_private:scope"));
  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("9starts.with.digit"));
  EXPECT_FALSE(IsValidMetricName("has space"));
  EXPECT_FALSE(IsValidMetricName("has{brace}"));
  EXPECT_FALSE(IsValidMetricName("has\"quote"));
  EXPECT_FALSE(IsValidMetricName("has\nnewline"));
}

TEST(MetricNameTest, InvalidNamesAreQuarantined) {
  Registry registry;
  uint64_t rejected_before =
      registry.counter("obs.invalid_metric_names")->value();
  Counter* bad = registry.counter("bad name{evil=\"x\"}");
  Counter* quarantine = registry.counter("obs.invalid_metric");
  EXPECT_EQ(bad, quarantine);
  EXPECT_EQ(registry.counter("obs.invalid_metric_names")->value(),
            rejected_before + 1);
  bad->Increment();
  std::string prometheus = registry.RenderPrometheus();
  EXPECT_EQ(prometheus.find("bad name"), std::string::npos);
  EXPECT_NE(prometheus.find("obs_invalid_metric"), std::string::npos);
}

TEST(MetricNameTest, HelpTextIsEscapedInPrometheusExport) {
  Registry registry;
  registry.counter("escaped.help")->Increment();
  registry.SetHelp("escaped.help", "line one\nline two \\ backslash");
  std::string prometheus = registry.RenderPrometheus();
  EXPECT_NE(
      prometheus.find("# HELP escaped_help line one\\nline two \\\\ "
                      "backslash"),
      std::string::npos);
  // The raw newline must not appear inside the HELP line.
  EXPECT_EQ(prometheus.find("line one\nline two"), std::string::npos);
}

// --- Hold registry and watchdog --------------------------------------

TEST(HoldRegistryTest, ClaimReleaseRoundTrip) {
  size_t before = HoldRegistry::Snapshot().size();
  {
    ScopedHold hold("test.hold");
    std::vector<HoldRegistry::HoldInfo> holds = HoldRegistry::Snapshot();
    ASSERT_EQ(holds.size(), before + 1);
    bool found = false;
    for (const auto& info : holds) {
      if (std::string(info.what) == "test.hold") {
        found = true;
        EXPECT_NE(info.since_ns, 0u);
      }
    }
    EXPECT_TRUE(found);
  }
  EXPECT_EQ(HoldRegistry::Snapshot().size(), before);
}

TEST(WatchdogTest, ProgressingSpanIsNotFlagged) {
  Tracing::Clear();
  Tracing::Enable();
  Watchdog watchdog;
  WatchdogOptions options;
  options.scan_interval = std::chrono::milliseconds(60000);
  options.span_deadline = std::chrono::milliseconds(60);
  options.hold_deadline = std::chrono::milliseconds(60);
  options.install_crash_handler = false;
  ASSERT_TRUE(watchdog.Start(options).ok());
  uint64_t stalls_before = watchdog.stalls();
  {
    ODE_TRACE_SPAN("long.but.busy");
    // Keep opening children past the deadline: thread activity stays
    // fresh, so the old parent span must not be flagged.
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(150);
    while (std::chrono::steady_clock::now() < until) {
      ODE_TRACE_SPAN("child.tick");
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    watchdog.ScanOnce();
    EXPECT_EQ(watchdog.stalls(), stalls_before);
  }
  watchdog.Stop();
  Tracing::Disable();
  Tracing::Clear();
}

TEST(WatchdogTest, IdleSpanPastDeadlineIsFlaggedOnce) {
  Tracing::Clear();
  Tracing::Enable();
  Watchdog watchdog;
  WatchdogOptions options;
  options.scan_interval = std::chrono::milliseconds(60000);
  options.span_deadline = std::chrono::milliseconds(50);
  options.hold_deadline = std::chrono::milliseconds(50);
  options.install_crash_handler = false;
  ASSERT_TRUE(watchdog.Start(options).ok());
  uint64_t stalls_before = watchdog.stalls();
  uint64_t journal_before = Journal::Global().appended();
  {
    ODE_TRACE_SPAN("wedged");
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    watchdog.ScanOnce();
    EXPECT_EQ(watchdog.stalls(), stalls_before + 1);
    // Already-flagged spans are not re-reported.
    watchdog.ScanOnce();
    EXPECT_EQ(watchdog.stalls(), stalls_before + 1);
  }
  // The stall arrived in the journal with the span's name.
  EXPECT_GT(Journal::Global().appended(), journal_before);
  bool found = false;
  for (const JournalRecord& record : Journal::Global().Snapshot()) {
    if (record.type == JournalEvent::kWatchdogStall &&
        record.detail != nullptr &&
        std::string(record.detail) == "wedged") {
      found = true;
      EXPECT_EQ(record.arg1, 0);  // span stall, not a hold
    }
  }
  EXPECT_TRUE(found);
  watchdog.Stop();
  Tracing::Disable();
  Tracing::Clear();
}

TEST(WatchdogTest, StuckHoldIsFlagged) {
  Tracing::Clear();
  Tracing::Enable();
  Watchdog watchdog;
  WatchdogOptions options;
  options.scan_interval = std::chrono::milliseconds(60000);
  options.span_deadline = std::chrono::milliseconds(50);
  options.hold_deadline = std::chrono::milliseconds(50);
  options.install_crash_handler = false;
  ASSERT_TRUE(watchdog.Start(options).ok());
  uint64_t stalls_before = watchdog.stalls();
  {
    ScopedHold hold("test.stuck_latch");
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    watchdog.ScanOnce();
  }
  EXPECT_EQ(watchdog.stalls(), stalls_before + 1);
  bool found = false;
  for (const JournalRecord& record : Journal::Global().Snapshot()) {
    if (record.type == JournalEvent::kWatchdogStall &&
        record.detail != nullptr &&
        std::string(record.detail) == "test.stuck_latch") {
      found = true;
      EXPECT_EQ(record.arg1, 1);  // hold stall
    }
  }
  EXPECT_TRUE(found);
  watchdog.Stop();
  Tracing::Disable();
  Tracing::Clear();
}

TEST(WatchdogTest, StatusReportListsConfiguration) {
  Watchdog watchdog;
  std::string report = watchdog.StatusReport();
  EXPECT_NE(report.find("running: no"), std::string::npos);
  EXPECT_NE(report.find("span_deadline_ms"), std::string::npos);
  EXPECT_NE(report.find("stalls_total"), std::string::npos);
}

TEST(WatchdogTest, StallCounterSurfacesInPrometheusExport) {
  // The ISSUE-specified exposition name is the sanitized dotted name.
  Registry::Global().counter("watchdog.stalls.total");
  std::string prometheus = Registry::Global().RenderPrometheus();
  EXPECT_NE(prometheus.find("watchdog_stalls_total"), std::string::npos);
}

// --- Telemetry endpoint ----------------------------------------------

// Minimal blocking HTTP GET against 127.0.0.1:`port`.
std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(TelemetryServerTest, ServesMetricsJournalAndTrace) {
  Registry::Global().counter("telemetry.smoke")->Increment();
  Journal::Global().Append(JournalEvent::kMark, 0, 0,
                           Journal::InternLabel("telemetry-smoke"));
  TelemetryServer server;
  ASSERT_TRUE(server.Start(/*port=*/0).ok());
  ASSERT_NE(server.port(), 0);

  std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE"), std::string::npos);
  EXPECT_NE(metrics.find("telemetry_smoke"), std::string::npos);

  std::string journal = HttpGet(server.port(), "/journal");
  EXPECT_NE(journal.find("200 OK"), std::string::npos);
  EXPECT_NE(journal.find("application/x-ndjson"), std::string::npos);
  EXPECT_NE(journal.find("telemetry-smoke"), std::string::npos);

  std::string trace = HttpGet(server.port(), "/trace");
  EXPECT_NE(trace.find("200 OK"), std::string::npos);
  EXPECT_NE(trace.find("traceEvents"), std::string::npos);

  std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("ok"), std::string::npos);

  std::string missing = HttpGet(server.port(), "/no-such-page");
  EXPECT_NE(missing.find("404"), std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(TelemetryServerTest, ServesHeatmapAndTimeseries) {
  AccessLog& log = AccessLog::Global();
  log.ResetForTest();
  log.Start();
  log.Record(AccessOp::kGet, 5, 1, Journal::InternLabel("scraped_class"), 9);
  log.RecordAffinity(5, 1, Journal::InternLabel("scraped_class"), 5, 2,
                     Journal::InternLabel("scraped_class"));
  Registry::Global().counter("telemetry.ts_smoke")->Increment();
  TimeSeriesStore::Global().TickOnce();

  TelemetryServer server;
  ASSERT_TRUE(server.Start(/*port=*/0).ok());

  std::string heatmap = HttpGet(server.port(), "/heatmap");
  EXPECT_NE(heatmap.find("200 OK"), std::string::npos);
  EXPECT_NE(heatmap.find("application/json"), std::string::npos);
  EXPECT_NE(heatmap.find("\"page\":9"), std::string::npos);
  EXPECT_NE(heatmap.find("\"class\":\"scraped_class\""), std::string::npos);
  EXPECT_NE(heatmap.find("\"src\":\"c5:o1\""), std::string::npos);
  // The body (after the blank header separator) is valid JSON.
  size_t body_at = heatmap.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_TRUE(JsonValidator(
                  std::string_view(heatmap).substr(body_at + 4))
                  .Validate());

  std::string timeseries = HttpGet(server.port(), "/timeseries");
  EXPECT_NE(timeseries.find("200 OK"), std::string::npos);
  EXPECT_NE(timeseries.find("application/json"), std::string::npos);
  EXPECT_NE(timeseries.find("telemetry.ts_smoke"), std::string::npos);
  body_at = timeseries.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_TRUE(JsonValidator(
                  std::string_view(timeseries).substr(body_at + 4))
                  .Validate());

  server.Stop();
  log.ResetForTest();
}

TEST(TelemetryServerTest, StartTwiceFails) {
  TelemetryServer server;
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_FALSE(server.Start(0).ok());
  server.Stop();
}

TEST(TelemetryServerTest, RestartsAfterStop) {
  TelemetryServer server;
  ASSERT_TRUE(server.Start(0).ok());
  server.Stop();
  ASSERT_TRUE(server.Start(0).ok());
  std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  server.Stop();
}

#if GTEST_HAS_DEATH_TEST
TEST(CrashHandlerDeathTest, DumpsFlightRecorderOnFatalSignal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Watchdog::InstallCrashHandler();
        Journal::Global().Append(JournalEvent::kMark, 0, 0,
                                 Journal::InternLabel("pre-crash"));
        std::abort();
      },
      "ode flight recorder");
}
#endif  // GTEST_HAS_DEATH_TEST

}  // namespace
}  // namespace ode::obs
