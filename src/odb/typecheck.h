#ifndef ODEVIEW_ODB_TYPECHECK_H_
#define ODEVIEW_ODB_TYPECHECK_H_

#include "common/status.h"
#include "odb/schema.h"
#include "odb/value.h"

namespace ode::odb {

/// Verifies that `value` is a valid instance of class `class_name`:
/// a struct whose fields exactly match the class's effective members
/// (own + inherited, base-first order) with type-compatible values.
///
/// Compatibility rules:
///  * null is accepted for any member (uninitialized attribute);
///  * int accepts kInt and kBool; real accepts kReal and kInt;
///  * a reference member of class C accepts a kRef whose class is C or
///    any descendant of C (substitutability), or a null ref;
///  * an embedded member of class C recursively checks the struct;
///  * fixed arrays must match their declared size; unsized arrays any;
///  * sets/arrays check every element against the element type.
Status TypeCheckObject(const Schema& schema, std::string_view class_name,
                       const Value& value);

/// Checks one value against one declared type (exposed for tests).
Status TypeCheckValue(const Schema& schema, const TypeRef& type,
                      const Value& value, std::string_view context);

/// Builds a default-initialized instance of `class_name`: zeros for
/// numerics, empty strings, null refs, empty sets, sized arrays filled
/// with element defaults. Useful for tools and tests.
Result<Value> DefaultInstance(const Schema& schema,
                              std::string_view class_name);

}  // namespace ode::odb

#endif  // ODEVIEW_ODB_TYPECHECK_H_
