#include "common/journal.h"

#include <unistd.h>

#include <bit>
#include <cstdio>
#include <sstream>
#include <unordered_set>

#include "common/metrics.h"
#include "common/threading.h"
#include "common/trace.h"

namespace ode::obs {

namespace {

/// JSON string escaping for detail labels (class names etc.).
void AppendJsonEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

const char* JournalEventName(JournalEvent type) {
  switch (type) {
    case JournalEvent::kSessionOpen:
      return "session_open";
    case JournalEvent::kSessionClose:
      return "session_close";
    case JournalEvent::kEpochBump:
      return "epoch_bump";
    case JournalEvent::kCascadeStart:
      return "cascade_start";
    case JournalEvent::kCascadeEnd:
      return "cascade_end";
    case JournalEvent::kEvictionPressure:
      return "eviction_pressure";
    case JournalEvent::kDynlinkFault:
      return "dynlink_fault";
    case JournalEvent::kWatchdogStall:
      return "watchdog_stall";
    case JournalEvent::kMark:
      return "mark";
    case JournalEvent::kLockRankViolation:
      return "lockrank_violation";
    case JournalEvent::kExecScan:
      return "exec_scan";
    case JournalEvent::kExecJoin:
      return "exec_join";
    case JournalEvent::kWalRecoveryStart:
      return "wal_recovery_start";
    case JournalEvent::kWalRecoveryEnd:
      return "wal_recovery_end";
    case JournalEvent::kWalCheckpoint:
      return "wal_checkpoint";
    case JournalEvent::kWalTornTail:
      return "wal_torn_tail";
    case JournalEvent::kSlowOp:
      return "slow_op";
    case JournalEvent::kAccessRecorderStart:
      return "access_recorder_start";
    case JournalEvent::kAccessRecorderStop:
      return "access_recorder_stop";
    case JournalEvent::kAccessRingOverflow:
      return "access_ring_overflow";
    case JournalEvent::kReclusterStart:
      return "recluster_start";
    case JournalEvent::kReclusterEnd:
      return "recluster_end";
    case JournalEvent::kPrefetchIssued:
      return "prefetch_issued";
  }
  return "unknown";
}

Journal::Journal(size_t capacity) {
  if (capacity < 8) capacity = 8;
  capacity_ = std::bit_ceil(capacity);
  mask_ = capacity_ - 1;
  slots_ = std::make_unique<Slot[]>(capacity_);
}

Journal& Journal::Global() {
  // Leaked singleton: crash handlers read the journal during (or
  // after) static destruction.
  static Journal* journal = new Journal();
  return *journal;
}

void Journal::Append(JournalEvent type, int64_t arg0, int64_t arg1,
                     const char* detail) {
  uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = slots_[seq & mask_];
  // Claim the slot by swapping any *older* committed value (or 0) to
  // the busy marker. A producer that finds the slot busy, or already
  // committed by a newer generation, lagged a full ring behind: its
  // record would be overwritten immediately anyway, so it is dropped
  // and counted, keeping the accounting exact.
  uint64_t current = slot.commit.load(std::memory_order_relaxed);
  while (true) {
    if (current == kBusy || current > seq) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (slot.commit.compare_exchange_weak(current, kBusy,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
      break;
    }
  }
  if (current != 0) {
    overwritten_.fetch_add(1, std::memory_order_relaxed);
  }
  TraceContext ctx = CurrentTraceContext();
  slot.ts_ns.store(Tracing::NowNanos(), std::memory_order_relaxed);
  slot.type.store(static_cast<uint32_t>(type), std::memory_order_relaxed);
  slot.thread_id.store(CurrentThreadId(), std::memory_order_relaxed);
  slot.trace_id.store(ctx.trace_id, std::memory_order_relaxed);
  slot.span_id.store(ctx.span_id, std::memory_order_relaxed);
  slot.arg0.store(arg0, std::memory_order_relaxed);
  slot.arg1.store(arg1, std::memory_order_relaxed);
  slot.detail.store(detail, std::memory_order_relaxed);
  // Publish: readers acquire `commit` and then see every field above.
  slot.commit.store(seq, std::memory_order_release);
}

bool Journal::ReadSlot(uint64_t seq, JournalRecord* out) const {
  const Slot& slot = slots_[seq & mask_];
  if (slot.commit.load(std::memory_order_acquire) != seq) return false;
  out->seq = seq;
  out->ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
  out->type =
      static_cast<JournalEvent>(slot.type.load(std::memory_order_relaxed));
  out->thread_id = slot.thread_id.load(std::memory_order_relaxed);
  out->trace_id = slot.trace_id.load(std::memory_order_relaxed);
  out->span_id = slot.span_id.load(std::memory_order_relaxed);
  out->arg0 = slot.arg0.load(std::memory_order_relaxed);
  out->arg1 = slot.arg1.load(std::memory_order_relaxed);
  out->detail = slot.detail.load(std::memory_order_relaxed);
  // Re-check after the payload reads: if a writer reclaimed the slot
  // meanwhile, the fields may mix two records — discard.
  return slot.commit.load(std::memory_order_acquire) == seq;
}

std::vector<JournalRecord> Journal::Snapshot() const {
  uint64_t newest = next_seq_.load(std::memory_order_acquire);
  uint64_t oldest = newest > capacity_ ? newest - capacity_ + 1 : 1;
  std::vector<JournalRecord> out;
  out.reserve(newest >= oldest ? newest - oldest + 1 : 0);
  for (uint64_t seq = oldest; seq <= newest; ++seq) {
    JournalRecord record;
    if (ReadSlot(seq, &record)) out.push_back(record);
  }
  return out;
}

std::string Journal::ExportJsonLines() const {
  std::string out;
  for (const JournalRecord& r : Snapshot()) {
    std::ostringstream line;
    line << "{\"seq\":" << r.seq << ",\"ts_ns\":" << r.ts_ns << ",\"type\":\""
         << JournalEventName(r.type) << "\",\"thread\":" << r.thread_id
         << ",\"trace\":" << r.trace_id << ",\"span\":" << r.span_id
         << ",\"arg0\":" << r.arg0 << ",\"arg1\":" << r.arg1;
    out += line.str();
    if (r.detail != nullptr) {
      out += ",\"detail\":\"";
      AppendJsonEscaped(&out, r.detail);
      out += "\"";
    }
    out += "}\n";
  }
  // Loss-accounting trailer: consumers can tell a quiet system from a
  // saturated ring. Shaped like a record (seq 0 = synthetic) so line
  // parsers need no special case.
  out += "{\"seq\":0,\"ts_ns\":" + std::to_string(Tracing::NowNanos()) +
         ",\"type\":\"journal_stats\",\"appended\":" +
         std::to_string(appended()) +
         ",\"dropped\":" + std::to_string(dropped()) +
         ",\"overwritten\":" + std::to_string(overwritten()) +
         ",\"capacity\":" + std::to_string(capacity_) + "}\n";
  PublishLossMetrics();
  return out;
}

void Journal::PublishLossMetrics() const {
  // Instance journals (tests) have no process-wide counters to feed.
  if (this != &Global()) return;
  // Move each counter forward by the delta since the last publication
  // (CAS keeps the watermark monotone under concurrent exports).
  static std::atomic<uint64_t> published_appended{0};
  static std::atomic<uint64_t> published_dropped{0};
  static std::atomic<uint64_t> published_overwritten{0};
  auto publish = [](Counter* counter, std::atomic<uint64_t>& last,
                    uint64_t now) {
    uint64_t prev = last.load(std::memory_order_relaxed);
    while (prev < now &&
           !last.compare_exchange_weak(prev, now,
                                       std::memory_order_relaxed)) {
    }
    if (prev < now) counter->Add(now - prev);
  };
  Registry& registry = Registry::Global();
  publish(registry.counter("obs.journal.appended"), published_appended,
          appended());
  publish(registry.counter("obs.journal.dropped"), published_dropped,
          dropped());
  publish(registry.counter("obs.journal.overwritten"),
          published_overwritten, overwritten());
}

std::string Journal::RenderText(size_t max_records) const {
  std::vector<JournalRecord> records = Snapshot();
  size_t start =
      records.size() > max_records ? records.size() - max_records : 0;
  std::ostringstream os;
  os << "-- journal tail (" << records.size() - start << " of "
     << appended() << " records, " << dropped() << " dropped) --\n";
  for (size_t i = start; i < records.size(); ++i) {
    const JournalRecord& r = records[i];
    os << "  #" << r.seq << " +" << r.ts_ns / 1000000 << "ms "
       << JournalEventName(r.type) << " thread=" << r.thread_id
       << " arg0=" << r.arg0 << " arg1=" << r.arg1;
    if (r.trace_id != 0) os << " trace=" << r.trace_id;
    if (r.detail != nullptr) os << " detail=" << r.detail;
    os << "\n";
  }
  return os.str();
}

void Journal::DumpTail(int fd, size_t max_records) const {
  uint64_t newest = next_seq_.load(std::memory_order_acquire);
  uint64_t window = max_records < capacity_ ? max_records : capacity_;
  uint64_t oldest = newest > window ? newest - window + 1 : 1;
  char line[256];
  for (uint64_t seq = oldest; seq <= newest; ++seq) {
    JournalRecord r;
    if (!ReadSlot(seq, &r)) continue;
    int n = std::snprintf(
        line, sizeof(line),
        "  journal #%llu +%llums %s thread=%u arg0=%lld arg1=%lld%s%s\n",
        static_cast<unsigned long long>(r.seq),
        static_cast<unsigned long long>(r.ts_ns / 1000000),
        JournalEventName(r.type), r.thread_id,
        static_cast<long long>(r.arg0), static_cast<long long>(r.arg1),
        r.detail != nullptr ? " detail=" : "",
        r.detail != nullptr ? r.detail : "");
    if (n > 0) {
      ssize_t ignored = ::write(fd, line, static_cast<size_t>(n));
      (void)ignored;
    }
  }
}

const char* Journal::InternLabel(std::string_view label) {
  // Leaked intern table: returned pointers must stay valid for the
  // life of the process (journal slots hold them indefinitely).
  static Mutex* mu = new Mutex(LockRank::kJournalIntern);
  static std::unordered_set<std::string>* table =
      new std::unordered_set<std::string>();
  MutexLock lock(*mu);
  return table->emplace(label).first->c_str();
}

}  // namespace ode::obs
