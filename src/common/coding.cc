#include "common/coding.h"

#include <cstring>

namespace ode {

void PutFixed16(std::string* dst, uint16_t value) {
  char buf[2];
  buf[0] = static_cast<char>(value & 0xff);
  buf[1] = static_cast<char>((value >> 8) & 0xff);
  dst->append(buf, 2);
}

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  for (int i = 0; i < 4; ++i) {
    buf[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  dst->append(buf, 8);
}

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value | 0x80);
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

void PutDouble(std::string* dst, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  PutFixed64(dst, bits);
}

uint16_t DecodeFixed16(const char* ptr) {
  const auto* p = reinterpret_cast<const unsigned char*>(ptr);
  return static_cast<uint16_t>(p[0]) | (static_cast<uint16_t>(p[1]) << 8);
}

uint32_t DecodeFixed32(const char* ptr) {
  const auto* p = reinterpret_cast<const unsigned char*>(ptr);
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

uint64_t DecodeFixed64(const char* ptr) {
  const auto* p = reinterpret_cast<const unsigned char*>(ptr);
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

Status Decoder::GetFixed16(uint16_t* value) {
  if (input_.size() < 2) return Status::Corruption("truncated fixed16");
  *value = DecodeFixed16(input_.data());
  input_.remove_prefix(2);
  return Status::OK();
}

Status Decoder::GetFixed32(uint32_t* value) {
  if (input_.size() < 4) return Status::Corruption("truncated fixed32");
  *value = DecodeFixed32(input_.data());
  input_.remove_prefix(4);
  return Status::OK();
}

Status Decoder::GetFixed64(uint64_t* value) {
  if (input_.size() < 8) return Status::Corruption("truncated fixed64");
  *value = DecodeFixed64(input_.data());
  input_.remove_prefix(8);
  return Status::OK();
}

Status Decoder::GetVarint32(uint32_t* value) {
  uint64_t v = 0;
  ODE_RETURN_IF_ERROR(GetVarint64(&v));
  if (v > UINT32_MAX) return Status::Corruption("varint32 overflow");
  *value = static_cast<uint32_t>(v);
  return Status::OK();
}

Status Decoder::GetVarint64(uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (input_.empty()) return Status::Corruption("truncated varint");
    auto byte = static_cast<unsigned char>(input_.front());
    input_.remove_prefix(1);
    if (byte & 0x80) {
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    } else {
      result |= static_cast<uint64_t>(byte) << shift;
      *value = result;
      return Status::OK();
    }
  }
  return Status::Corruption("varint too long");
}

Status Decoder::GetDouble(double* value) {
  uint64_t bits = 0;
  ODE_RETURN_IF_ERROR(GetFixed64(&bits));
  std::memcpy(value, &bits, sizeof(*value));
  return Status::OK();
}

Status Decoder::GetLengthPrefixed(std::string_view* value) {
  uint64_t len = 0;
  ODE_RETURN_IF_ERROR(GetVarint64(&len));
  return GetRaw(static_cast<size_t>(len), value);
}

Status Decoder::GetRaw(size_t n, std::string_view* value) {
  if (input_.size() < n) return Status::Corruption("truncated bytes");
  *value = input_.substr(0, n);
  input_.remove_prefix(n);
  return Status::OK();
}

namespace {

/// Table-driven CRC-32 (reflected 0xEDB88320, the zlib/ISO-HDLC form).
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    auto* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view bytes, uint32_t seed) {
  const uint32_t* table = Crc32Table();
  uint32_t crc = ~seed;
  for (char c : bytes) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<uint8_t>(c)) & 0xff];
  }
  return ~crc;
}

}  // namespace ode
