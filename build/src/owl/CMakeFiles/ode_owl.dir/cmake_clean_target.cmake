file(REMOVE_RECURSE
  "libode_owl.a"
)
