// Tests for schema evolution (AlterClass with object migration) and
// deep extents — the facilities behind §4.5's claim that schema
// changes (addition, deletion, and modification of class definitions)
// never require recompiling OdeView.

#include <gtest/gtest.h>

#include "dynlink/lab_modules.h"
#include "odb/database.h"
#include "odb/ddl_parser.h"
#include "odb/labdb.h"
#include "odeview/app.h"

namespace ode::odb {
namespace {

std::unique_ptr<Database> FreshDb() {
  auto db = std::move(*Database::CreateInMemory("evo"));
  EXPECT_TRUE(db->DefineSchema(R"(
class person {
public:
  string name;
  int age;
};
class student : public person {
public:
  string school;
};
)")
                  .ok());
  return db;
}

Value P(std::string name, int64_t age) {
  return Value::Struct(
      {{"name", Value::String(std::move(name))}, {"age", Value::Int(age)}});
}

// --- Deep extents -----------------------------------------------------------

TEST(DeepExtentTest, IncludesDescendantClusters) {
  auto db = FreshDb();
  Oid p = *db->CreateObject("person", P("ann", 30));
  Value s = P("bob", 20);
  s.mutable_fields().push_back({"school", Value::String("mit")});
  Oid st = *db->CreateObject("student", s);
  EXPECT_EQ(db->ScanCluster("person")->size(), 1u);
  std::vector<Oid> deep = *db->ScanClusterDeep("person");
  ASSERT_EQ(deep.size(), 2u);
  EXPECT_EQ(deep[0], p);   // base cluster first
  EXPECT_EQ(deep[1], st);
  // A leaf class's deep extent is its own cluster.
  EXPECT_EQ(db->ScanClusterDeep("student")->size(), 1u);
}

TEST(DeepExtentTest, LabEmployeesIncludeManagers) {
  auto db = std::move(*Database::CreateInMemory("lab"));
  ASSERT_TRUE(BuildLabDatabase(db.get()).ok());
  EXPECT_EQ(db->ScanCluster("employee")->size(), 55u);
  EXPECT_EQ(db->ScanClusterDeep("employee")->size(), 62u);  // + 7 managers
}

// --- AlterClass migration --------------------------------------------------

TEST(AlterClassTest, AddedMembersGetDefaults) {
  auto db = FreshDb();
  Oid p = *db->CreateObject("person", P("ann", 30));
  ClassDef updated = *ParseClassDef(R"(
class person {
public:
  string name;
  int age;
  string email;
  set<person*> contacts;
};
)");
  ASSERT_TRUE(db->AlterClass(updated).ok());
  ObjectBuffer buffer = *db->GetObject(p);
  EXPECT_EQ(buffer.value.FindField("name")->AsString(), "ann");
  EXPECT_EQ(buffer.value.FindField("age")->AsInt(), 30);
  ASSERT_NE(buffer.value.FindField("email"), nullptr);
  EXPECT_EQ(buffer.value.FindField("email")->AsString(), "");
  EXPECT_EQ(buffer.value.FindField("contacts")->kind(), ValueKind::kSet);
  // The migrated object still type-checks, so updates keep working.
  *buffer.value.FindMutableField("email") = Value::String("ann@lab");
  EXPECT_TRUE(db->UpdateObject(p, buffer.value).ok());
}

TEST(AlterClassTest, RemovedMembersAreDropped) {
  auto db = FreshDb();
  Oid p = *db->CreateObject("person", P("ann", 30));
  ClassDef updated =
      *ParseClassDef("class person { public: string name; };");
  ASSERT_TRUE(db->AlterClass(updated).ok());
  ObjectBuffer buffer = *db->GetObject(p);
  EXPECT_EQ(buffer.value.size(), 1u);
  EXPECT_EQ(buffer.value.FindField("age"), nullptr);
}

TEST(AlterClassTest, RetypedMembersReset) {
  auto db = FreshDb();
  Oid p = *db->CreateObject("person", P("ann", 30));
  ClassDef updated = *ParseClassDef(
      "class person { public: string name; string age; };");
  ASSERT_TRUE(db->AlterClass(updated).ok());
  ObjectBuffer buffer = *db->GetObject(p);
  EXPECT_EQ(buffer.value.FindField("age")->kind(), ValueKind::kString);
  EXPECT_EQ(buffer.value.FindField("age")->AsString(), "");
}

TEST(AlterClassTest, DescendantObjectsMigrateToo) {
  auto db = FreshDb();
  Value s = P("bob", 20);
  s.mutable_fields().push_back({"school", Value::String("mit")});
  Oid st = *db->CreateObject("student", s);
  ClassDef updated = *ParseClassDef(R"(
class person {
public:
  string name;
  int age;
  bool active;
};
)");
  ASSERT_TRUE(db->AlterClass(updated).ok());
  ObjectBuffer buffer = *db->GetObject(st);
  // The student kept its own member and gained the inherited one.
  EXPECT_EQ(buffer.value.FindField("school")->AsString(), "mit");
  ASSERT_NE(buffer.value.FindField("active"), nullptr);
  EXPECT_FALSE(buffer.value.FindField("active")->AsBool());
}

TEST(AlterClassTest, MigrationBumpsVersions) {
  auto db = FreshDb();
  Oid p = *db->CreateObject("person", P("ann", 30));
  EXPECT_EQ(db->GetObject(p)->version, 1u);
  ClassDef updated = *ParseClassDef(
      "class person { public: string name; int age; int badge; };");
  ASSERT_TRUE(db->AlterClass(updated).ok());
  EXPECT_EQ(db->GetObject(p)->version, 2u);
}

TEST(AlterClassTest, BaseChangeRejected) {
  auto db = FreshDb();
  ClassDef updated =
      *ParseClassDef("class student { public: string school; };");
  EXPECT_TRUE(db->AlterClass(updated).IsInvalidArgument());  // lost base
}

TEST(AlterClassTest, InvalidNewDefinitionRolledBack) {
  auto db = FreshDb();
  Oid p = *db->CreateObject("person", P("ann", 30));
  ClassDef updated = *ParseClassDef(
      "class person { public: string name; ghost* g; };");
  EXPECT_TRUE(db->AlterClass(updated).IsInvalidArgument());
  // The old definition and the object are untouched.
  EXPECT_EQ((*db->GetClass("person"))->members.size(), 2u);
  EXPECT_EQ(db->GetObject(p)->value.FindField("age")->AsInt(), 30);
}

TEST(AlterClassTest, EvolutionSurvivesReopenFromDisk) {
  std::string path = testing::TempDir() + "/odeview_evolution.db";
  std::remove(path.c_str());
  Oid p;
  {
    auto db = std::move(*Database::CreateOnDisk(path, "evo"));
    ASSERT_TRUE(
        db->DefineSchema("class person { public: string name; };").ok());
    p = *db->CreateObject(
        "person", Value::Struct({{"name", Value::String("ann")}}));
    ClassDef updated = *ParseClassDef(
        "class person { public: string name; int age; };");
    ASSERT_TRUE(db->AlterClass(updated).ok());
    ASSERT_TRUE(db->Sync().ok());
  }
  auto reopened = Database::OpenOnDisk(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((**reopened).GetClass("person").value()->members.size(), 2u);
  ObjectBuffer buffer = *(*reopened)->GetObject(p);
  EXPECT_EQ(buffer.value.FindField("name")->AsString(), "ann");
  ASSERT_NE(buffer.value.FindField("age"), nullptr);
  EXPECT_EQ(buffer.value.FindField("age")->AsInt(), 0);
  std::remove(path.c_str());
}

TEST(AlterClassTest, UnknownClassRejected) {
  auto db = FreshDb();
  ClassDef updated = *ParseClassDef("class ghost { public: int x; };");
  EXPECT_TRUE(db->AlterClass(updated).IsNotFound());
}

}  // namespace
}  // namespace ode::odb

namespace ode::view {
namespace {

TEST(EvolutionInOdeView, AlterThenOnClassChangedRefreshesBrowsers) {
  auto db = std::move(*odb::Database::CreateInMemory("lab"));
  odb::LabDbConfig config;
  config.employees = 5;
  config.managers = 1;
  ASSERT_TRUE(odb::BuildLabDatabase(db.get(), config).ok());
  OdeViewApp app(200, 80);
  ASSERT_TRUE(dynlink::RegisterLabDisplayModules(app.repository(), "lab",
                                                 db->schema())
                  .ok());
  ASSERT_TRUE(app.AddDatabaseBorrowed(db.get()).ok());
  DbInteractor* lab = *app.OpenDatabase("lab");
  BrowseNode* node = *lab->OpenObjectSet("project");
  ASSERT_TRUE(node->Next().ok());
  ASSERT_TRUE(node->ToggleFormat("text").ok());
  // The DBA adds a member to project while OdeView is running.
  odb::ClassDef updated = *odb::ParseClassDef(R"(
persistent class project {
public:
  string title;
  real budget;
  employee* lead;
  set<employee*> members;
  string status;
  display text;
  selectlist title, budget;
  constraint budget >= 0;
};
)");
  ASSERT_TRUE(db->AlterClass(updated).ok());
  ASSERT_TRUE(lab->OnClassChanged("project").ok());
  // Browsing continues; the new member shows with its default value.
  ASSERT_TRUE(node->Next().ok() || node->Prev().ok() ||
              node->Reset().ok());
  ASSERT_TRUE(node->Next().ok());
  ASSERT_TRUE(node->has_current());
  EXPECT_NE(node->Current()->value.FindField("status"), nullptr);
}

}  // namespace
}  // namespace ode::view
