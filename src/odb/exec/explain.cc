#include "odb/exec/explain.h"

#include <chrono>
#include <cstdio>
#include <set>
#include <sstream>

#include "odb/exec/compiled_predicate.h"
#include "odb/predicate.h"

namespace ode::odb::exec {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string EscapeJson(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatMs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return std::string(buf) + " ms";
}

/// The one-line actuals summary under each text-rendered operator:
/// the numbers someone tuning a query reaches for first. The full
/// charge set is in the JSON rendering.
void AppendActualText(std::ostringstream& os, const std::string& indent,
                      const PlanNode& node) {
  const obs::OpProfileStats& a = node.actual;
  os << indent << "actual: rows=" << node.rows_out
     << " time=" << FormatMs(node.time_ns) << " pages_read=" << a.pool_misses
     << " pool_hits=" << a.pool_hits << " rows_scanned=" << a.rows_scanned;
  if (a.lock_wait_ns != 0) {
    os << " lock_wait=" << FormatMs(a.lock_wait_ns);
  }
  if (a.wal_commit_wait_ns != 0) {
    os << " wal_wait=" << FormatMs(a.wal_commit_wait_ns);
  }
  if (a.cluster_prefetches != 0) {
    os << " cluster_prefetches=" << a.cluster_prefetches;
  }
  os << "\n";
}

void RenderNodeText(std::ostringstream& os, const PlanNode& node, int depth) {
  std::string indent(static_cast<size_t>(depth) * 2, ' ');
  os << indent << (depth == 0 ? "" : "-> ") << node.op << "\n";
  std::string prop_indent = indent + (depth == 0 ? "  " : "     ");
  for (const auto& [key, value] : node.props) {
    os << prop_indent << key << ": " << value << "\n";
  }
  if (node.analyzed) AppendActualText(os, prop_indent, node);
  for (const PlanNode& child : node.children) {
    RenderNodeText(os, child, depth + 1);
  }
}

void RenderNodeJson(std::ostringstream& os, const PlanNode& node) {
  os << "{\"op\":\"" << EscapeJson(node.op) << "\",\"props\":{";
  bool first = true;
  for (const auto& [key, value] : node.props) {
    if (!first) os << ",";
    first = false;
    os << "\"" << EscapeJson(key) << "\":\"" << EscapeJson(value) << "\"";
  }
  os << "}";
  if (node.analyzed) {
    os << ",\"time_ns\":" << node.time_ns << ",\"rows\":" << node.rows_out
       << ",\"actual\":{";
    obs::AppendOpProfileStatsJson(os, node.actual);
    os << "}";
  }
  os << ",\"children\":[";
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i != 0) os << ",";
    RenderNodeJson(os, node.children[i]);
  }
  os << "]}";
}

/// Shared static description of one scan input (used by both the
/// top-level scan plan and a join's children).
PlanNode DescribeScan(const ScanSpec& spec) {
  PlanNode node;
  node.op = "scan";
  node.props.emplace_back("class", spec.class_name);
  node.props.emplace_back("predicate", spec.predicate != nullptr
                                           ? spec.predicate->ToString()
                                           : "true");
  CompiledPredicate compiled = spec.predicate != nullptr
                                   ? CompiledPredicate::Compile(*spec.predicate)
                                   : CompiledPredicate();
  // Mirror ExecuteScan's strategy choice: with nothing to decode and
  // nothing to filter, ids come straight from the heap directory.
  std::set<std::string> mask;
  if (!spec.project_all) {
    if (spec.predicate != nullptr) {
      for (const std::string& path : spec.predicate->AttributePaths()) {
        mask.insert(path);
      }
    }
    if (spec.projection != nullptr) {
      for (const std::string& path : *spec.projection) mask.insert(path);
    }
  }
  bool ids_only = !spec.project_all && mask.empty() && compiled.always_true();
  node.props.emplace_back("strategy", ids_only ? "ids-only" : "batched-decode");
  node.props.emplace_back(
      "projection", spec.project_all
                        ? "full"
                        : (mask.empty() ? "none"
                                        : "masked (" +
                                              std::to_string(mask.size()) +
                                              " attributes)"));
  node.props.emplace_back(
      "compiled", std::to_string(compiled.nodes().size()) + " nodes, " +
                      std::to_string(compiled.slots().size()) + " slots");
  node.props.emplace_back("batch_size", std::to_string(spec.batch_size));
  node.props.emplace_back("parallelism", std::to_string(spec.parallelism));
  return node;
}

void FillActuals(PlanNode* node, uint64_t time_ns, uint64_t rows_out,
                 const obs::OpProfileStats& actual) {
  node->analyzed = true;
  node->time_ns = time_ns;
  node->rows_out = rows_out;
  node->actual = actual;
}

}  // namespace

std::string ExplainResult::RenderText() const {
  std::ostringstream os;
  RenderNodeText(os, root, 0);
  if (analyzed) {
    const obs::OpProfileStats& t = totals;
    os << "totals: time=" << FormatMs(total_ns)
       << " pages_read=" << t.pool_misses << " pool_hits=" << t.pool_hits
       << " pager_reads=" << t.pager_reads
       << " rows_scanned=" << t.rows_scanned
       << " lock_wait=" << FormatMs(t.lock_wait_ns);
    if (t.cluster_prefetches != 0) {
      os << " cluster_prefetches=" << t.cluster_prefetches;
    }
    os << "\n";
  }
  return os.str();
}

std::string ExplainResult::RenderJson() const {
  std::ostringstream os;
  os << "{\"analyzed\":" << (analyzed ? "true" : "false");
  if (analyzed) {
    os << ",\"total_ns\":" << total_ns << ",\"totals\":{";
    obs::AppendOpProfileStatsJson(os, totals);
    os << "}";
  }
  os << ",\"plan\":";
  RenderNodeJson(os, root);
  os << "}";
  return os.str();
}

Result<ExplainResult> ExplainScan(Database* db, const ScanSpec& spec,
                                  bool analyze) {
  ExplainResult result;
  result.root = DescribeScan(spec);
  if (!analyze) return result;

  // Run the scan under a nested profile so the plan's actuals carry
  // exactly this scan's charges; the profile then merges back into the
  // caller's current one so session totals stay exact.
  obs::OpProfile profile;
  uint64_t start = NowNs();
  auto run = [&]() -> Result<ScanResult> {
    obs::OpProfileScope scope(&profile);
    return ExecuteScan(db, spec);
  };
  ODE_ASSIGN_OR_RETURN(ScanResult scan, run());
  uint64_t elapsed = NowNs() - start;
  if (auto* enclosing = obs::CurrentOpProfile()) profile.MergeInto(enclosing);

  result.analyzed = true;
  result.total_ns = elapsed;
  result.totals = profile.Snapshot();
  FillActuals(&result.root, elapsed, scan.stats.rows_matched, result.totals);
  return result;
}

Result<ExplainResult> ExplainJoin(Database* db, const JoinSpec& spec,
                                  bool analyze) {
  Predicate always = Predicate::True();
  const Predicate& predicate =
      spec.predicate != nullptr ? *spec.predicate : always;
  // Compiling up front both validates the predicate (EXPLAIN fails the
  // same way the join would) and sizes the program for the plan.
  ODE_ASSIGN_OR_RETURN(CompiledPredicate compiled,
                       CompiledPredicate::CompileJoin(predicate));

  ExplainResult result;
  PlanNode& root = result.root;
  std::string left_key, right_key;
  bool hash = FindHashJoinKey(predicate, &left_key, &right_key);
  root.op = hash ? "hash-join" : "nested-loop-join";
  root.props.emplace_back("predicate", predicate.ToString());
  if (hash) {
    root.props.emplace_back("key",
                            "left." + left_key + " = right." + right_key);
    root.props.emplace_back("note",
                            "falls back to nested loop on non-scalar keys");
  }
  root.props.emplace_back(
      "compiled", std::to_string(compiled.nodes().size()) + " nodes, " +
                      std::to_string(compiled.slots().size()) + " slots");
  root.props.emplace_back("batch_size", std::to_string(spec.batch_size));

  // The children mirror ExecuteJoin's inputs: each side materializes
  // only the attributes the join predicate touches.
  std::vector<std::string> left_paths, right_paths;
  bool left_all = false, right_all = false;
  for (const CompiledPredicate::Slot& slot : compiled.slots()) {
    bool left = slot.side == CompiledPredicate::Side::kLeft;
    if (slot.parts.empty()) {
      (left ? left_all : right_all) = true;
    } else {
      (left ? left_paths : right_paths).push_back(slot.dotted);
    }
  }
  auto side_spec = [&](const std::string& class_name,
                       const std::vector<std::string>& paths, bool all) {
    ScanSpec scan;
    scan.class_name = class_name;
    scan.projection = &paths;
    scan.project_all = all;
    scan.batch_size = spec.batch_size;
    return scan;
  };
  {
    ScanSpec left = side_spec(spec.left_class, left_paths, left_all);
    ScanSpec right = side_spec(spec.right_class, right_paths, right_all);
    root.children.push_back(DescribeScan(left));
    root.children.push_back(DescribeScan(right));
  }
  if (!analyze) return result;

  // One wrapper profile around the whole join: the per-phase profiles
  // ExecuteJoin collects merge into it (scans via RunJoinPhase, the
  // match charge directly), so the totals equal the sum of the three
  // per-operator actuals — the equivalence EXPLAIN ANALYZE promises.
  obs::OpProfile profile;
  JoinPhaseActuals actuals;
  uint64_t start = NowNs();
  auto run = [&]() -> Result<JoinResult> {
    obs::OpProfileScope scope(&profile);
    return ExecuteJoin(db, spec, &actuals);
  };
  ODE_ASSIGN_OR_RETURN(JoinResult out, run());
  uint64_t elapsed = NowNs() - start;
  if (auto* enclosing = obs::CurrentOpProfile()) profile.MergeInto(enclosing);

  result.analyzed = true;
  result.total_ns = elapsed;
  result.totals = profile.Snapshot();
  // The runtime can downgrade a predicted hash join (non-scalar keys);
  // report what actually ran.
  root.op = out.stats.hash_join ? "hash-join" : "nested-loop-join";
  if (out.stats.hash_join) {
    root.props.emplace_back("built",
                            out.stats.built_left ? "left" : "right");
  }
  FillActuals(&root, actuals.match_ns, out.stats.pairs, actuals.match_profile);
  FillActuals(&root.children[0], actuals.left_ns,
              actuals.left_scan.rows_matched, actuals.left_profile);
  FillActuals(&root.children[1], actuals.right_ns,
              actuals.right_scan.rows_matched, actuals.right_profile);
  return result;
}

}  // namespace ode::odb::exec
