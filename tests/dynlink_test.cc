#include <gtest/gtest.h>

#include "dynlink/lab_modules.h"
#include "dynlink/linker.h"
#include "dynlink/repository.h"
#include "dynlink/synthesized.h"
#include "odb/database.h"
#include "odb/labdb.h"

namespace ode::dynlink {
namespace {

DisplayFunction TrivialDisplay(std::string text) {
  return [text](const odb::ObjectBuffer&, const std::vector<std::string>&,
                const std::vector<bool>&) -> Result<DisplayResources> {
    DisplayResources resources;
    WindowSpec window;
    window.format = "text";
    window.text = text;
    resources.windows.push_back(window);
    return resources;
  };
}

DisplayModule Module(std::string cls, std::string format,
                     std::string text = "x", size_t code = 1024) {
  return DisplayModule{"lab", std::move(cls), std::move(format),
                       TrivialDisplay(std::move(text)), code};
}

// --- Repository ----------------------------------------------------------

TEST(RepositoryTest, RegisterAndFind) {
  ModuleRepository repo;
  ASSERT_TRUE(repo.Register(Module("employee", "text")).ok());
  ASSERT_TRUE(repo.Register(Module("employee", "picture")).ok());
  EXPECT_EQ(repo.size(), 2u);
  EXPECT_TRUE(repo.Find("lab", "employee", "text").ok());
  EXPECT_TRUE(repo.Find("lab", "employee", "ps").status().IsNotFound());
  EXPECT_TRUE(repo.Find("other", "employee", "text").status().IsNotFound());
}

TEST(RepositoryTest, FormatsInRegistrationOrder) {
  ModuleRepository repo;
  ASSERT_TRUE(repo.Register(Module("doc", "text")).ok());
  ASSERT_TRUE(repo.Register(Module("doc", "postscript")).ok());
  ASSERT_TRUE(repo.Register(Module("doc", "bitmap")).ok());
  EXPECT_EQ(repo.FormatsFor("lab", "doc"),
            (std::vector<std::string>{"text", "postscript", "bitmap"}));
  EXPECT_TRUE(repo.FormatsFor("lab", "nothing").empty());
}

TEST(RepositoryTest, ReplaceKeepsSingleEntry) {
  ModuleRepository repo;
  ASSERT_TRUE(repo.Register(Module("c", "text", "v1")).ok());
  ASSERT_TRUE(repo.Register(Module("c", "text", "v2")).ok());
  EXPECT_EQ(repo.size(), 1u);
  EXPECT_EQ(repo.FormatsFor("lab", "c").size(), 1u);
}

TEST(RepositoryTest, UnregisterRemovesClassModules) {
  ModuleRepository repo;
  ASSERT_TRUE(repo.Register(Module("a", "text")).ok());
  ASSERT_TRUE(repo.Register(Module("a", "picture")).ok());
  ASSERT_TRUE(repo.Register(Module("b", "text")).ok());
  EXPECT_EQ(repo.Unregister("lab", "a"), 2);
  EXPECT_EQ(repo.size(), 1u);
  EXPECT_EQ(repo.Unregister("lab", "a"), 0);
}

TEST(RepositoryTest, InvalidModulesRejected) {
  ModuleRepository repo;
  EXPECT_FALSE(repo.Register(DisplayModule{}).ok());
  DisplayModule no_fn = Module("x", "text");
  no_fn.function = nullptr;
  EXPECT_FALSE(repo.Register(no_fn).ok());
}

// --- Linker ------------------------------------------------------------------

TEST(LinkerTest, ColdLoadThenCacheHit) {
  ModuleRepository repo;
  ASSERT_TRUE(repo.Register(Module("employee", "text")).ok());
  DynamicLinker linker(&repo);
  EXPECT_FALSE(linker.IsLoaded("lab", "employee", "text"));
  ASSERT_TRUE(linker.Load("lab", "employee", "text").ok());
  EXPECT_TRUE(linker.IsLoaded("lab", "employee", "text"));
  EXPECT_EQ(linker.stats().loads, 1u);
  ASSERT_TRUE(linker.Load("lab", "employee", "text").ok());
  EXPECT_EQ(linker.stats().loads, 1u);
  EXPECT_EQ(linker.stats().cache_hits, 1u);
}

TEST(LinkerTest, MissingModuleReported) {
  ModuleRepository repo;
  DynamicLinker linker(&repo);
  EXPECT_TRUE(linker.Load("lab", "ghost", "text").status().IsNotFound());
}

TEST(LinkerTest, InvalidatePicksUpNewVersion) {
  ModuleRepository repo;
  ASSERT_TRUE(repo.Register(Module("c", "text", "old")).ok());
  DynamicLinker linker(&repo);
  const DisplayFunction* fn = *linker.Load("lab", "c", "text");
  odb::ObjectBuffer buffer;
  EXPECT_EQ((*fn)(buffer, {}, {})->windows[0].text, "old");
  // Class designer recompiles the display function...
  ASSERT_TRUE(repo.Register(Module("c", "text", "new")).ok());
  // ...the stale copy stays loaded until invalidation.
  fn = *linker.Load("lab", "c", "text");
  EXPECT_EQ((*fn)(buffer, {}, {})->windows[0].text, "old");
  EXPECT_EQ(linker.Invalidate("lab", "c"), 1);
  fn = *linker.Load("lab", "c", "text");
  EXPECT_EQ((*fn)(buffer, {}, {})->windows[0].text, "new");
  EXPECT_EQ(linker.stats().invalidations, 1u);
}

TEST(LinkerTest, BytesLoadedTracksCodeSize) {
  ModuleRepository repo;
  ASSERT_TRUE(repo.Register(Module("a", "text", "x", 5000)).ok());
  ASSERT_TRUE(repo.Register(Module("b", "text", "x", 7000)).ok());
  DynamicLinker linker(&repo);
  (void)*linker.Load("lab", "a", "text");
  (void)*linker.Load("lab", "b", "text");
  EXPECT_EQ(linker.stats().bytes_loaded, 12000u);
  linker.UnloadAll();
  EXPECT_EQ(linker.loaded_count(), 0u);
}

// --- AttributeSelected ----------------------------------------------------------

TEST(ProtocolTest, AttributeSelection) {
  std::vector<std::string> attrs = {"name", "age", "salary"};
  EXPECT_TRUE(AttributeSelected(attrs, {}, "name"));      // empty mask
  EXPECT_TRUE(AttributeSelected(attrs, {}, "anything"));  // no projection
  std::vector<bool> mask = {true, false, true};
  EXPECT_TRUE(AttributeSelected(attrs, mask, "name"));
  EXPECT_FALSE(AttributeSelected(attrs, mask, "age"));
  EXPECT_TRUE(AttributeSelected(attrs, mask, "salary"));
  EXPECT_FALSE(AttributeSelected(attrs, mask, "unlisted"));
}

// --- Synthesized fallbacks ---------------------------------------------------------

class SynthesizedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::move(*odb::Database::CreateInMemory("lab"));
    ASSERT_TRUE(odb::BuildLabDatabase(db_.get(), SmallConfig()).ok());
  }
  static odb::LabDbConfig SmallConfig() {
    odb::LabDbConfig config;
    config.employees = 5;
    config.managers = 2;
    config.departments = 2;
    config.projects = 1;
    config.documents = 1;
    return config;
  }
  std::unique_ptr<odb::Database> db_;
};

TEST_F(SynthesizedTest, DisplayShowsPublicMembersOnly) {
  odb::ObjectBuffer emp = *db_->GetObject(*db_->FirstObject("employee"));
  DisplayFunction fn =
      SynthesizeDisplayFunction(db_->schema(), "employee");
  Result<DisplayResources> resources = fn(emp, {}, {});
  ASSERT_TRUE(resources.ok()) << resources.status().ToString();
  ASSERT_EQ(resources->windows.size(), 1u);
  const std::string& text = resources->windows[0].text;
  EXPECT_NE(text.find("name: \"rakesh\""), std::string::npos) << text;
  EXPECT_NE(text.find("age:"), std::string::npos);
  // salary is private: encapsulation hides it.
  EXPECT_EQ(text.find("salary"), std::string::npos);
}

TEST_F(SynthesizedTest, PrivilegedModeViolatesEncapsulation) {
  odb::ObjectBuffer emp = *db_->GetObject(*db_->FirstObject("employee"));
  DisplayFunction fn = SynthesizeDisplayFunction(db_->schema(), "employee",
                                                 /*privileged=*/true);
  Result<DisplayResources> resources = fn(emp, {}, {});
  ASSERT_TRUE(resources.ok());
  EXPECT_NE(resources->windows[0].text.find("salary"), std::string::npos);
}

TEST_F(SynthesizedTest, ProjectionMaskFiltersAttributes) {
  odb::ObjectBuffer emp = *db_->GetObject(*db_->FirstObject("employee"));
  std::vector<std::string> attrs = {"name", "age", "title", "salary"};
  std::vector<bool> mask = {true, false, false, false};
  DisplayFunction fn =
      SynthesizeDisplayFunction(db_->schema(), "employee");
  Result<DisplayResources> resources = fn(emp, attrs, mask);
  ASSERT_TRUE(resources.ok());
  const std::string& text = resources->windows[0].text;
  EXPECT_NE(text.find("name:"), std::string::npos);
  EXPECT_EQ(text.find("age:"), std::string::npos);
  EXPECT_EQ(text.find("title:"), std::string::npos);
}

TEST_F(SynthesizedTest, WrongClassIsDisplayFault) {
  odb::ObjectBuffer emp = *db_->GetObject(*db_->FirstObject("employee"));
  DisplayFunction fn =
      SynthesizeDisplayFunction(db_->schema(), "department");
  EXPECT_TRUE(fn(emp, {}, {}).status().IsDisplayFault());
}

TEST_F(SynthesizedTest, DisplayListIsPublicMembers) {
  std::vector<std::string> list =
      *SynthesizeDisplayList(db_->schema(), "employee");
  EXPECT_NE(std::find(list.begin(), list.end(), "name"), list.end());
  EXPECT_NE(std::find(list.begin(), list.end(), "dept"), list.end());
  EXPECT_EQ(std::find(list.begin(), list.end(), "salary"), list.end());
}

TEST_F(SynthesizedTest, SelectListIsPublicScalars) {
  std::vector<std::string> list =
      *SynthesizeSelectList(db_->schema(), "employee");
  EXPECT_NE(std::find(list.begin(), list.end(), "age"), list.end());
  // References, sets, and blobs are not selectable.
  EXPECT_EQ(std::find(list.begin(), list.end(), "dept"), list.end());
  EXPECT_EQ(std::find(list.begin(), list.end(), "picture"), list.end());
}

TEST_F(SynthesizedTest, InheritedMembersIncluded) {
  std::vector<std::string> list =
      *SynthesizeDisplayList(db_->schema(), "manager");
  // manager inherits employee.name and department.location.
  EXPECT_NE(std::find(list.begin(), list.end(), "name"), list.end());
  EXPECT_NE(std::find(list.begin(), list.end(), "location"), list.end());
  EXPECT_NE(std::find(list.begin(), list.end(), "reports"), list.end());
}

// --- Lab modules -----------------------------------------------------------------

TEST_F(SynthesizedTest, InheritedModuleResolution) {
  ModuleRepository repo;
  ASSERT_TRUE(repo.Register(Module("employee", "text", "emp-text")).ok());
  ASSERT_TRUE(repo.Register(Module("department", "map", "dept-map")).ok());
  // manager derives from employee AND department: it inherits both
  // classes' display member functions.
  EXPECT_EQ(repo.InheritedFormatsFor(db_->schema(), "lab", "manager"),
            (std::vector<std::string>{"text", "map"}));
  Result<const DisplayModule*> text =
      repo.FindInherited(db_->schema(), "lab", "manager", "text");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ((*text)->class_name, "employee");  // defining class
  // An own module overrides the inherited one.
  ASSERT_TRUE(repo.Register(Module("manager", "text", "mgr-text")).ok());
  text = repo.FindInherited(db_->schema(), "lab", "manager", "text");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ((*text)->class_name, "manager");
  EXPECT_TRUE(repo.FindInherited(db_->schema(), "lab", "manager", "3d")
                  .status()
                  .IsNotFound());
}

TEST_F(SynthesizedTest, LabModulesRegisterAllFormats) {
  ModuleRepository repo;
  ASSERT_TRUE(RegisterLabDisplayModules(&repo, "lab", db_->schema()).ok());
  EXPECT_EQ(repo.FormatsFor("lab", "employee"),
            (std::vector<std::string>{"text", "picture"}));
  EXPECT_EQ(repo.FormatsFor("lab", "document"),
            (std::vector<std::string>{"text", "postscript", "bitmap"}));
}

TEST_F(SynthesizedTest, EmployeeTextDisplayHasTitleWithName) {
  ModuleRepository repo;
  ASSERT_TRUE(RegisterLabDisplayModules(&repo, "lab", db_->schema()).ok());
  DynamicLinker linker(&repo);
  const DisplayFunction* fn = *linker.Load("lab", "employee", "text");
  odb::ObjectBuffer emp = *db_->GetObject(*db_->FirstObject("employee"));
  Result<DisplayResources> resources = (*fn)(emp, {}, {});
  ASSERT_TRUE(resources.ok());
  EXPECT_EQ(resources->windows[0].title, "employee: rakesh");
  EXPECT_EQ(resources->windows[0].kind, WindowKind::kScrollText);
}

TEST_F(SynthesizedTest, EmployeePictureDisplayIsValidPbm) {
  ModuleRepository repo;
  ASSERT_TRUE(RegisterLabDisplayModules(&repo, "lab", db_->schema()).ok());
  DynamicLinker linker(&repo);
  const DisplayFunction* fn = *linker.Load("lab", "employee", "picture");
  odb::ObjectBuffer emp = *db_->GetObject(*db_->FirstObject("employee"));
  Result<DisplayResources> resources = (*fn)(emp, {}, {});
  ASSERT_TRUE(resources.ok());
  EXPECT_EQ(resources->windows[0].kind, WindowKind::kRasterImage);
  EXPECT_EQ(resources->windows[0].image_pbm.substr(0, 2), "P1");
}

TEST_F(SynthesizedTest, FaultyModuleReturnsDisplayFault) {
  ModuleRepository repo;
  ASSERT_TRUE(RegisterFaultyDisplayModule(&repo, "lab", "employee").ok());
  DynamicLinker linker(&repo);
  const DisplayFunction* fn = *linker.Load("lab", "employee", "crash");
  odb::ObjectBuffer emp = *db_->GetObject(*db_->FirstObject("employee"));
  EXPECT_TRUE((*fn)(emp, {}, {}).status().IsDisplayFault());
}

}  // namespace
}  // namespace ode::dynlink
