#include <gtest/gtest.h>

#include "common/coding.h"
#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"

namespace ode {
namespace {

// --- Status ---------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::NotFound("employee 42");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_EQ(status.message(), "employee 42");
  EXPECT_EQ(status.ToString(), "not found: employee 42");
}

TEST(StatusTest, CopyPreservesState) {
  Status status = Status::Corruption("bad page");
  Status copy = status;
  EXPECT_TRUE(copy.IsCorruption());
  EXPECT_EQ(copy.message(), "bad page");
  EXPECT_TRUE(status.IsCorruption());  // source unchanged
}

TEST(StatusTest, MoveLeavesSourceOk) {
  Status status = Status::IOError("disk");
  Status moved = std::move(status);
  EXPECT_FALSE(moved.ok());
  EXPECT_EQ(moved.code(), StatusCode::kIOError);
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kDisplayFault); ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::DisplayFault("x").IsDisplayFault());
  EXPECT_TRUE(Status::ConstraintViolation("x").IsConstraintViolation());
  EXPECT_FALSE(Status::OK().IsNotFound());
}

// --- Result ----------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> result(7);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 7);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> Quarter(int v) {
  ODE_ASSIGN_OR_RETURN(int half, Half(v));
  ODE_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());
  EXPECT_TRUE(Quarter(7).status().IsInvalidArgument());
}

// --- Coding ----------------------------------------------------------

TEST(CodingTest, Fixed16RoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xBEEF);
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(DecodeFixed16(buf.data()), 0xBEEF);
}

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xDEADBEEFu);
  EXPECT_EQ(DecodeFixed32(buf.data()), 0xDEADBEEFu);
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  EXPECT_EQ(DecodeFixed64(buf.data()), 0x0123456789ABCDEFull);
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, RoundTrips) {
  std::string buf;
  PutVarint64(&buf, GetParam());
  Decoder decoder(buf);
  uint64_t decoded = 0;
  ASSERT_TRUE(decoder.GetVarint64(&decoded).ok());
  EXPECT_EQ(decoded, GetParam());
  EXPECT_TRUE(decoder.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, VarintRoundTrip,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 129ull, 16383ull,
                      16384ull, (1ull << 32) - 1, 1ull << 32,
                      (1ull << 63), UINT64_MAX));

TEST(CodingTest, VarintTruncationDetected) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  buf.resize(buf.size() - 1);
  Decoder decoder(buf);
  uint64_t v = 0;
  EXPECT_TRUE(decoder.GetVarint64(&v).IsCorruption());
}

TEST(CodingTest, Varint32Overflow) {
  std::string buf;
  PutVarint64(&buf, 1ull << 33);
  Decoder decoder(buf);
  uint32_t v = 0;
  EXPECT_TRUE(decoder.GetVarint32(&v).IsCorruption());
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  Decoder decoder(buf);
  std::string_view a, b, c;
  ASSERT_TRUE(decoder.GetLengthPrefixed(&a).ok());
  ASSERT_TRUE(decoder.GetLengthPrefixed(&b).ok());
  ASSERT_TRUE(decoder.GetLengthPrefixed(&c).ok());
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c.size(), 1000u);
  EXPECT_TRUE(decoder.empty());
}

TEST(CodingTest, LengthPrefixTruncationDetected) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello world");
  buf.resize(5);
  Decoder decoder(buf);
  std::string_view v;
  EXPECT_TRUE(decoder.GetLengthPrefixed(&v).IsCorruption());
}

TEST(CodingTest, DoubleRoundTrip) {
  for (double d : {0.0, -1.5, 3.14159, 1e300, -1e-300}) {
    std::string buf;
    PutDouble(&buf, d);
    Decoder decoder(buf);
    double decoded = 0;
    ASSERT_TRUE(decoder.GetDouble(&decoded).ok());
    EXPECT_EQ(decoded, d);
  }
}

TEST(CodingTest, GetRawBounds) {
  Decoder decoder("abc");
  std::string_view v;
  EXPECT_TRUE(decoder.GetRaw(2, &v).ok());
  EXPECT_EQ(v, "ab");
  EXPECT_TRUE(decoder.GetRaw(2, &v).IsCorruption());
}

// --- Strings ----------------------------------------------------------

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b \n"), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringsTest, JoinInverseOfSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(StringsTest, AffixChecks) {
  EXPECT_TRUE(StartsWith("employee", "emp"));
  EXPECT_FALSE(StartsWith("emp", "employee"));
  EXPECT_TRUE(EndsWith("schema.odl", ".odl"));
  EXPECT_FALSE(EndsWith("x", "xx"));
}

TEST(StringsTest, PadToExactWidth) {
  EXPECT_EQ(PadTo("ab", 5), "ab   ");
  EXPECT_EQ(PadTo("abcdef", 3), "abc");
  EXPECT_EQ(PadTo("", 2), "  ");
}

TEST(StringsTest, WrapTextBreaksAtSpaces) {
  std::vector<std::string> lines = WrapText("the quick brown fox", 10);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "the quick");
  EXPECT_EQ(lines[1], "brown fox");
}

TEST(StringsTest, WrapTextHardBreaksLongWords) {
  std::vector<std::string> lines = WrapText("abcdefghij", 4);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0], "abcd");
}

TEST(StringsTest, WrapTextHonorsNewlines) {
  std::vector<std::string> lines = WrapText("a\n\nb", 10);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1], "");
}

}  // namespace
}  // namespace ode
