#ifndef ODEVIEW_ODB_LABDB_H_
#define ODEVIEW_ODB_LABDB_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "odb/database.h"

namespace ode::odb {

/// Parameters for the synthetic "lab" database — the AT&T research
/// center database the paper browses in Section 3. The defaults
/// reproduce the cardinalities visible in the paper's screenshots:
/// 55 employee objects (Fig. 3) and 7 managers (Fig. 5), with manager
/// inheriting from both employee and department (Fig. 5).
struct LabDbConfig {
  int employees = 55;
  int managers = 7;
  int departments = 4;
  int projects = 6;
  int documents = 5;
  uint64_t seed = 1990;  ///< deterministic generator seed
};

/// The O++ DDL for the lab database schema.
std::string LabSchemaDdl();

/// Populates `db` (which must be freshly created) with the lab schema
/// and objects. The first employee is "rakesh" in the "research"
/// department, matching the paper's session (Figs. 6-10).
Status BuildLabDatabase(Database* db, const LabDbConfig& config = {});

/// Builds a scalable synthetic schema of `num_classes` classes whose
/// inheritance DAG has roughly `avg_bases` parents per class — the
/// workload for schema-browsing / DAG-layout benchmarks (Fig. 2).
std::string SyntheticSchemaDdl(int num_classes, int avg_bases,
                               uint64_t seed);

}  // namespace ode::odb

#endif  // ODEVIEW_ODB_LABDB_H_
