#ifndef ODEVIEW_ODB_EXEC_COMPILED_PREDICATE_H_
#define ODEVIEW_ODB_EXEC_COMPILED_PREDICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "odb/predicate.h"
#include "odb/value.h"

namespace ode::odb::exec {

/// A `Predicate` flattened into a slot-indexed program for batched
/// evaluation.
///
/// Compilation resolves every distinct attribute path to a *slot*
/// once; at scan time a batch first materializes one column of
/// resolved `Value*` per slot (nullptr = attribute absent, preserving
/// QBE semantics), then the node program runs column-at-a-time over
/// selection vectors. `&&` / `||` short-circuit per row exactly like
/// the tree-walking `Predicate::Evaluate`: the right operand is only
/// evaluated for rows the left operand did not decide, so type errors
/// surface for the same rows on both paths.
///
/// The compiled form is immutable and shareable across threads; all
/// mutable evaluation state (field-index hints, column buffers,
/// selection vectors) lives in a per-worker `Scratch`.
class CompiledPredicate {
 public:
  /// Which object a slot's path resolves against. Scans use kSelf
  /// only; join compilation strips the `left.` / `right.` qualifier
  /// into the side tag so pairs are evaluated without building the
  /// combined {left:…, right:…} struct the legacy path allocates per
  /// probe.
  enum class Side : uint8_t { kSelf, kLeft, kRight };

  struct Slot {
    Side side = Side::kSelf;
    std::vector<std::string> parts;  ///< dotted path, split
    std::string dotted;              ///< original (side-stripped) path
  };

  struct Node {
    Predicate::Kind kind = Predicate::Kind::kTrue;
    CompareOp op = CompareOp::kEq;
    int32_t lhs_slot = -1;  ///< -1: use lhs_literal
    int32_t rhs_slot = -1;  ///< -1: use rhs_literal
    Value lhs_literal;
    Value rhs_literal;
    int32_t child0 = -1;
    int32_t child1 = -1;
  };

  /// Per-worker mutable evaluation state. Default-constructible and
  /// reusable across batches; never shared between threads.
  struct Scratch {
    /// Cached field index per (slot, path depth). Objects of one
    /// class share their field order, so after the first row each
    /// lookup is a single index + name check.
    std::vector<std::vector<uint32_t>> hints;
    /// Resolved column per slot, row-major within the batch.
    std::vector<std::vector<const Value*>> columns;
    std::vector<uint8_t> truth;  ///< per-row result bits
  };

  CompiledPredicate() = default;  ///< compiled `true`

  /// Compiles a single-object predicate (every path side kSelf).
  static CompiledPredicate Compile(const Predicate& predicate);

  /// Compiles a join predicate whose paths are `left.<attr>` /
  /// `right.<attr>`; fails on any other qualifier.
  static Result<CompiledPredicate> CompileJoin(const Predicate& predicate);

  const std::vector<Slot>& slots() const { return slots_; }
  const std::vector<Node>& nodes() const { return nodes_; }
  bool always_true() const { return nodes_.empty(); }

  /// Evaluates one object (the cursor path — same machinery, batch of
  /// one).
  Result<bool> EvaluateOne(const Value& object, Scratch* scratch) const;

  /// Evaluates one (left, right) pair for a join predicate.
  Result<bool> EvaluatePair(const Value& left, const Value& right,
                            Scratch* scratch) const;

  /// Evaluates the batch `rows[0..n)` column-at-a-time, writing one
  /// truth byte per row into `scratch->truth`. Fails on the first
  /// type error an evaluated row produces.
  Status EvaluateBatch(const Value* rows, size_t n, Scratch* scratch) const;

 private:
  int32_t CompileNode(const Predicate& predicate, bool join,
                      Status* error);
  int32_t InternSlot(Side side, std::string_view dotted);

  /// Fills `scratch->columns[slot]` for `n` rows. `left`/`right` are
  /// the pair objects for join slots; `rows` serves kSelf slots.
  void BindColumns(const Value* rows, const Value* left, const Value* right,
                   size_t n, Scratch* scratch) const;
  Status EvalNode(int32_t node, const std::vector<uint32_t>& sel,
                  Scratch* scratch) const;

  std::vector<Slot> slots_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace ode::odb::exec

#endif  // ODEVIEW_ODB_EXEC_COMPILED_PREDICATE_H_
