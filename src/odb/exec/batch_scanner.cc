#include "odb/exec/batch_scanner.h"

#include <utility>

#include "odb/database.h"

namespace ode::odb::exec {

BatchScanner::BatchScanner(Database* db, std::string class_name,
                           uint64_t after, uint64_t last,
                           const ProjectionMask* mask, size_t batch_size)
    : db_(db),
      class_name_(std::move(class_name)),
      cursor_(after),
      last_(last),
      mask_(mask),
      batch_size_(batch_size == 0 ? kDefaultBatchSize : batch_size) {}

Result<bool> BatchScanner::Next(RowBatch* batch) {
  batch->clear();
  if (done_) return false;
  ODE_RETURN_IF_ERROR(
      db_->ScanRawRecords(class_name_, cursor_, batch_size_, &raw_));
  if (raw_.records.empty()) {
    done_ = true;
    return false;
  }
  batch->cluster = raw_.cluster;
  batch->locals.reserve(raw_.records.size());
  batch->versions.reserve(raw_.records.size());
  batch->values.reserve(raw_.records.size());
  for (const HeapFile::RecordSpan& span : raw_.records) {
    if (span.local_id > last_) {
      done_ = true;
      break;
    }
    cursor_ = span.local_id;
    ODE_ASSIGN_OR_RETURN(ProjectedRecord record,
                         DecodeObjectRecordProjected(raw_.bytes(span), mask_));
    batch->locals.push_back(span.local_id);
    batch->versions.push_back(record.version);
    batch->values.push_back(std::move(record.value));
    batch->skipped_fields += record.skipped_fields;
    batch->arena_bytes += span.length;
  }
  if (raw_.records.size() < batch_size_) done_ = true;
  return !batch->locals.empty();
}

}  // namespace ode::odb::exec
