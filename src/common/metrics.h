#ifndef ODEVIEW_COMMON_METRICS_H_
#define ODEVIEW_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "common/threading.h"

namespace ode::obs {

/// Whether `name` is registrable: non-empty, starts with a letter or
/// underscore, and contains only `[a-zA-Z0-9_:.]`. Dots are allowed
/// (the repo's `<layer>.<noun>` convention) and map to underscores in
/// the Prometheus export; anything else (spaces, quotes, braces, ...)
/// is rejected at registration time.
bool IsValidMetricName(std::string_view name);

/// A monotonically increasing event count. All operations are lock-free
/// relaxed atomics — safe to bump from any thread, including latency-
/// critical paths.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can go up and down (active sessions, cached pages, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A log-bucketed histogram for latency-style samples (nanoseconds by
/// convention). Bucket `i` holds samples whose value has bit width `i`,
/// i.e. the range [2^(i-1), 2^i), so the buckets cover 1 ns to ~4.4 min
/// with ~2x resolution at constant (lock-free) recording cost.
class Histogram {
 public:
  /// Bucket count: bit widths 0..63 collapse into these buckets.
  static constexpr int kBuckets = 39;

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket `i` (the Prometheus `le` label).
  static uint64_t BucketUpperBound(int i);

  /// Approximate quantile (0 < q <= 1) from the bucket upper bounds;
  /// 0 when empty. Accurate to the ~2x bucket resolution.
  uint64_t ApproxQuantile(double q) const;

  /// Adds all of `other`'s samples into this histogram (relaxed adds;
  /// safe against concurrent recorders on either side).
  void MergeFrom(const Histogram& other);

 private:
  std::atomic<uint64_t> buckets_[kBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// One exported metric, aggregated across all instruments sharing a
/// name (the shared instrument plus any live owned instances).
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  // Counter / gauge payload.
  int64_t value = 0;
  // Histogram payload.
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
  std::vector<uint64_t> buckets;  ///< per-bucket counts (non-cumulative)
  /// Rotating-window view: quantiles over the most recent completed
  /// window (or the in-progress one while the first fills), so a burst
  /// of slow operations shows up even under a long uptime's worth of
  /// fast samples. `window_count` is the sample count behind them.
  uint64_t window_count = 0;
  uint64_t window_p50 = 0;
  uint64_t window_p95 = 0;
  uint64_t window_p99 = 0;
};

/// The process-wide metrics registry.
///
/// Two kinds of instruments exist:
///  * **shared** — `counter("a.b")` returns the one process-wide
///    instrument of that name (created on first use, never destroyed).
///    This is what instrumentation sites use.
///  * **owned** — `NewOwnedCounter("a.b")` returns a private instance
///    the caller can read exactly (e.g. one BufferPool's hit counts)
///    while exports see the sum of all live instances plus the shared
///    instrument of the same name. When the owner destroys its
///    instance, its final value is folded into a per-name retired
///    total so process-wide exports keep the full history. Owned
///    instruments must not outlive the registry they came from (the
///    global registry is leaked, so that is only a concern for
///    test-local registries).
///
/// Lookups take a mutex; call sites cache the returned pointer (e.g. in
/// a function-local static) so the hot path is just the atomic bump.
class Registry {
 public:
  static Registry& Global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Instrument lookups validate the name (see `IsValidMetricName`):
  /// an invalid name is rejected — the call warns, bumps the
  /// `obs.invalid_metric_names` counter, and returns the shared
  /// `obs.invalid_metric` quarantine instrument instead, so exports
  /// never carry an unescapable name.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  std::shared_ptr<Counter> NewOwnedCounter(std::string_view name);
  std::shared_ptr<Histogram> NewOwnedHistogram(std::string_view name);

  /// Attaches help text to `name`, emitted as an escaped `# HELP` line
  /// by `RenderPrometheus()`.
  void SetHelp(std::string_view name, std::string_view help);

  /// All metrics, name-sorted, owned instances folded into their name.
  std::vector<MetricSample> Snapshot() const;

  /// Prometheus text exposition (names sanitized to [a-z0-9_]).
  std::string RenderPrometheus() const;
  /// Machine-readable JSON: {"counters":{...},"gauges":{...},
  /// "histograms":{"name":{"count":..,"sum":..,"p50":..,...}}}.
  std::string RenderJson() const;
  /// Human-readable report (the runtime inspector's data source).
  std::string RenderText() const;

  /// Percentile-window length for `MetricSample`'s `window_*` fields.
  /// Windows rotate lazily during `Snapshot()`: when one has been open
  /// at least this long it is closed (its bucket delta becomes the
  /// exported window) and the next begins. 0 closes a window on every
  /// snapshot — deterministic, for tests and tight harness polling.
  void SetWindowDurationNs(uint64_t ns) {
    window_duration_ns_.store(ns, std::memory_order_relaxed);
  }
  uint64_t window_duration_ns() const {
    return window_duration_ns_.load(std::memory_order_relaxed);
  }

  /// Zeroes every shared instrument and drops owned registrations.
  /// Test-only: racing writers may land bumps in either era.
  void ResetForTest();

 private:
  /// Folds a dying owned instrument's final state into the retired
  /// accumulators (called from the owned shared_ptr deleters).
  void RetireCounter(const std::string& name, uint64_t value);
  void RetireHistogram(const std::string& name, const Histogram& histogram);

  /// Returns `name`, or the quarantine name after recording the
  /// rejection when `name` is invalid. Caller holds `mu_`.
  std::string_view ResolveName(std::string_view name) ODE_REQUIRES(mu_);
  /// counter() body without the lock. Caller holds `mu_`.
  Counter* CounterLocked(std::string_view name) ODE_REQUIRES(mu_);

  mutable Mutex mu_{LockRank::kMetricsRegistry};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      ODE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      ODE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      ODE_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::weak_ptr<Counter>>> owned_counters_
      ODE_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::weak_ptr<Histogram>>>
      owned_histograms_ ODE_GUARDED_BY(mu_);
  /// Totals carried over from destroyed owned instruments.
  std::map<std::string, uint64_t, std::less<>> retired_counters_
      ODE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
      retired_histograms_ ODE_GUARDED_BY(mu_);
  /// Per-histogram-name window state. `baseline` holds the aggregated
  /// bucket counts at the moment the current window opened; the delta
  /// against the live aggregate is the in-progress window, and
  /// `completed` the last closed one.
  struct HistWindow {
    uint64_t baseline[Histogram::kBuckets] = {};
    uint64_t baseline_count = 0;
    uint64_t completed[Histogram::kBuckets] = {};
    uint64_t completed_count = 0;
    uint64_t opened_at_ns = 0;  ///< 0 = never seen (first snapshot opens)
  };
  mutable std::map<std::string, HistWindow, std::less<>> windows_
      ODE_GUARDED_BY(mu_);
  std::atomic<uint64_t> window_duration_ns_{60ull * 1000 * 1000 * 1000};

  /// Optional `# HELP` text per metric name.
  std::map<std::string, std::string, std::less<>> help_ ODE_GUARDED_BY(mu_);
};

/// RAII timer recording elapsed nanoseconds into a histogram (and
/// optionally bumping a counter) on destruction.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* histogram, Counter* counter = nullptr)
      : histogram_(histogram),
        counter_(counter),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedLatencyTimer() {
    auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
    if (counter_ != nullptr) counter_->Increment();
  }

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* histogram_;
  Counter* counter_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ode::obs

#endif  // ODEVIEW_COMMON_METRICS_H_
