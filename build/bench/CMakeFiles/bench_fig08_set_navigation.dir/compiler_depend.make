# Empty compiler generated dependencies file for bench_fig08_set_navigation.
# This may be replaced when dependencies are built.
