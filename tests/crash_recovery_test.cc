// kill -9 crash-recovery battery.
//
// Each trial spawns this same binary as a writer child
// (`--crash-child`), lets it stream acknowledged commits over a pipe,
// SIGKILLs it at a randomized point, then reopens the database in the
// parent and checks the ARIES contract:
//
//   * reopen always succeeds (restart recovery handles any crash
//     point, including crashes inside checkpoints),
//   * exactly a prefix of the id space survives — every acknowledged
//     commit is present, no partially-committed object appears,
//   * surviving payloads are bit-exact (torn data pages repaired by
//     redo), and `CheckIntegrity` finds nothing,
//   * recovery is observable: the `wal.recovery.runs` counter moves
//     and the flight-recorder journal carries the recovery events.
//
// One lineage additionally injects torn WAL tails (truncations and
// byte flips strictly past the acknowledged durable watermark) before
// reopening. Five lineages x 20 trials = 100 randomized, seed-logged
// kill points.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/journal.h"
#include "common/metrics.h"
#include "common/telemetry_http.h"
#include "odb/cluster/plan.h"
#include "odb/database.h"
#include "odb/integrity.h"
#include "odb/value.h"
#include "odb/wal.h"

namespace ode::odb {
namespace {

constexpr char kSchema[] = R"(
persistent class rec {
public:
  int idx;
  string payload;
};
)";

/// Deterministic payload for sequence number `idx`: every 7th object
/// is multi-page (~6000 bytes) so overflow chains and multi-frame
/// commits are always in play.
std::string PayloadFor(int64_t idx) {
  size_t size = (idx % 7 == 0) ? 6000 : 40 + static_cast<size_t>(
                                             (idx * 37) % 200);
  std::string out(size, '\0');
  for (size_t i = 0; i < size; ++i) {
    out[i] = static_cast<char>('a' + (static_cast<size_t>(idx) + i) % 26);
  }
  return out;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

// --- Child ------------------------------------------------------------------

/// Writer child: opens (or creates) the database, prints READY, then
/// streams `ACK <local_id> <wal_durable_bytes>` after every
/// acknowledged commit until killed (or a generous cap).
int RunCrashChild(const std::string& path, int threads,
                  uint64_t checkpoint_bytes) {
  DatabaseOptions options;
  options.buffer_pool_pages = 24;  // keep eviction in play
  options.wal_checkpoint_bytes = checkpoint_bytes;

  Result<std::unique_ptr<Database>> opened =
      FileExists(path) ? Database::OpenOnDisk(path, options)
                       : Database::CreateOnDisk(path, "crash", options);
  if (!opened.ok()) {
    std::fprintf(stderr, "child open failed: %s\n",
                 opened.status().ToString().c_str());
    return 2;
  }
  std::unique_ptr<Database> db = std::move(*opened);
  if (!db->GetClass("rec").ok()) {
    if (!db->DefineSchema(kSchema).ok()) return 3;
  }
  // READY only after the database is fully created/recovered: the
  // parent never kills a half-created database (creation is only
  // "acknowledged" once the child reaches this line).
  {
    const char ready[] = "READY\n";
    if (::write(1, ready, sizeof(ready) - 1) < 0) return 4;
  }

  std::mutex ack_mu;
  auto worker = [&db, &ack_mu](int64_t base) {
    Session session = db->OpenSession();
    for (int64_t i = 0; i < 4000; ++i) {
      int64_t idx = base + i;
      Result<Oid> oid = session.CreateObject(
          "rec", Value::Struct({{"idx", Value::Int(idx)},
                                {"payload",
                                 Value::String(PayloadFor(idx))}}));
      if (!oid.ok()) std::abort();  // a failed commit must not be acked
      char line[64];
      int n = std::snprintf(line, sizeof(line), "ACK %llu %llu\n",
                            static_cast<unsigned long long>(oid->local),
                            static_cast<unsigned long long>(
                                db->wal()->durable_file_bytes()));
      std::lock_guard<std::mutex> lock(ack_mu);
      if (::write(1, line, static_cast<size_t>(n)) < 0) std::abort();
    }
  };
  std::vector<std::thread> writers;
  for (int t = 0; t < threads; ++t) {
    writers.emplace_back(worker, static_cast<int64_t>(t) * 1000000);
  }
  for (std::thread& w : writers) w.join();
  return 0;
}

/// Reorganizer child: seeds a fixed record set, then re-clusters it in
/// a loop with alternating groupings (so every round really moves
/// records), streaming `ACK <round> 0` after each completed recluster
/// until killed. Crashes land mid-seed (before the first ack) or mid-
/// recluster; either way recovery must keep every committed object
/// readable with a bit-exact payload.
int RunReclusterChild(const std::string& path, uint64_t checkpoint_bytes) {
  constexpr uint64_t kSeedCount = 200;
  DatabaseOptions options;
  options.buffer_pool_pages = 24;  // keep eviction in play
  options.wal_checkpoint_bytes = checkpoint_bytes;

  Result<std::unique_ptr<Database>> opened =
      FileExists(path) ? Database::OpenOnDisk(path, options)
                       : Database::CreateOnDisk(path, "crash", options);
  if (!opened.ok()) {
    std::fprintf(stderr, "child open failed: %s\n",
                 opened.status().ToString().c_str());
    return 2;
  }
  std::unique_ptr<Database> db = std::move(*opened);
  if (!db->GetClass("rec").ok()) {
    if (!db->DefineSchema(kSchema).ok()) return 3;
  }
  {
    const char ready[] = "READY\n";
    if (::write(1, ready, sizeof(ready) - 1) < 0) return 4;
  }

  // Top the record set up to kSeedCount (a prior incarnation may have
  // been killed mid-seed; ids continue from the surviving watermark).
  Result<uint64_t> count = db->ClusterCount("rec");
  if (!count.ok()) return 5;
  for (int64_t idx = static_cast<int64_t>(*count);
       idx < static_cast<int64_t>(kSeedCount); ++idx) {
    Result<Oid> oid = db->CreateObject(
        "rec", Value::Struct({{"idx", Value::Int(idx)},
                              {"payload", Value::String(PayloadFor(idx))}}));
    if (!oid.ok()) std::abort();
  }

  Result<std::vector<Oid>> scan = db->ScanCluster("rec");
  if (!scan.ok() || scan->empty()) return 6;
  std::vector<uint64_t> ids;
  for (Oid oid : *scan) ids.push_back(oid.local);

  for (uint64_t round = 1; round < 100000; ++round) {
    cluster::ClusterPlan plan;
    cluster::ClusterPlanEntry entry;
    entry.cluster = scan->front().cluster;
    entry.class_name = "rec";
    // Shift the grouping every other round so each recluster moves
    // records instead of re-packing them in place.
    for (size_t start = (round % 2) * 4; start < ids.size(); start += 8) {
      cluster::PageGroup group;
      for (size_t j = start; j < std::min(start + 8, ids.size()); ++j) {
        group.members.push_back(ids[j]);
      }
      if (group.members.size() < 2) continue;
      plan.planned_moves += group.members.size();
      entry.groups.push_back(std::move(group));
    }
    plan.clusters.push_back(std::move(entry));
    if (Status applied = db->Recluster(plan); !applied.ok()) {
      std::fprintf(stderr, "recluster failed: %s\n",
                   applied.ToString().c_str());
      std::abort();
    }
    char line[64];
    int n = std::snprintf(line, sizeof(line), "ACK %llu 0\n",
                          static_cast<unsigned long long>(round));
    if (::write(1, line, static_cast<size_t>(n)) < 0) std::abort();
  }
  return 0;
}

// --- Parent harness ---------------------------------------------------------

struct TrialOutcome {
  bool ready = false;            ///< child reached READY before dying
  uint64_t max_acked_id = 0;     ///< highest acknowledged local id
  uint64_t durable_offset = 0;   ///< WAL durable watermark at last ack
  bool durable_monotone = true;  ///< false once a checkpoint reset it
  int acks = 0;
};

/// Spawns the child, reads its ACK stream, kills it per `plan`, and
/// reaps it.
TrialOutcome SpawnAndKill(const std::string& path, int threads,
                          uint64_t checkpoint_bytes, int kill_after_acks,
                          unsigned sleep_us,
                          const char* mode = "--crash-child") {
  int fds[2];
  EXPECT_EQ(::pipe(fds), 0);
  pid_t pid = ::fork();
  if (pid == 0) {
    ::close(fds[0]);
    ::dup2(fds[1], 1);
    ::close(fds[1]);
    ::execl("/proc/self/exe", "ode_crash_recovery_tests", mode,
            path.c_str(), std::to_string(threads).c_str(),
            std::to_string(checkpoint_bytes).c_str(),
            static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  ::close(fds[1]);

  TrialOutcome outcome;
  FILE* stream = ::fdopen(fds[0], "r");
  EXPECT_NE(stream, nullptr);
  char line[128];
  bool killed = false;
  while (std::fgets(line, sizeof(line), stream) != nullptr) {
    if (std::strncmp(line, "READY", 5) == 0) {
      outcome.ready = true;
      if (kill_after_acks == 0) {
        ::usleep(sleep_us);
        ::kill(pid, SIGKILL);
        killed = true;
        break;
      }
      continue;
    }
    unsigned long long id = 0;
    unsigned long long durable = 0;
    if (std::sscanf(line, "ACK %llu %llu", &id, &durable) == 2) {
      if (id > outcome.max_acked_id) outcome.max_acked_id = id;
      if (durable < outcome.durable_offset) {
        outcome.durable_monotone = false;  // a checkpoint reset the log
      }
      outcome.durable_offset = durable;
      ++outcome.acks;
      if (outcome.acks >= kill_after_acks) {
        ::usleep(sleep_us);
        ::kill(pid, SIGKILL);
        killed = true;
        break;
      }
    }
  }
  if (!killed) ::kill(pid, SIGKILL);  // EOF or exec failure: reap anyway
  std::fclose(stream);
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  return outcome;
}

/// Reopens the database and verifies the full recovery contract.
void VerifyRecovered(const std::string& path, uint64_t max_acked_id,
                     uint64_t* max_surviving_id) {
  obs::Counter* runs = obs::Registry::Global().counter("wal.recovery.runs");
  const uint64_t runs_before = runs->value();

  auto reopened = Database::OpenOnDisk(path);
  ASSERT_TRUE(reopened.ok())
      << "reopen after kill -9 failed: " << reopened.status().ToString();
  std::unique_ptr<Database> db = std::move(*reopened);

  // Recovery must be observable: the counter moved and the journal
  // carries the start/end events.
  EXPECT_GT(runs->value(), runs_before);
  bool journaled = false;
  for (const obs::JournalRecord& record : obs::Journal::Global().Snapshot()) {
    if (record.type == obs::JournalEvent::kWalRecoveryStart) journaled = true;
  }
  EXPECT_TRUE(journaled) << "recovery left no flight-recorder trace";

  // Structural invariants: no dangling refs, no torn records.
  Result<std::vector<IntegrityIssue>> issues = CheckIntegrity(db.get());
  ASSERT_TRUE(issues.ok());
  EXPECT_TRUE(issues->empty()) << issues->size() << " integrity issues";

  // Exactly a prefix of the id space survives: ids are handed out in
  // commit order, so the survivor set must be {1..k} with k >= every
  // acknowledged id.
  Result<std::vector<Oid>> scan = db->ScanCluster("rec");
  ASSERT_TRUE(scan.ok());
  std::set<uint64_t> ids;
  for (Oid oid : *scan) ids.insert(oid.local);
  ASSERT_EQ(ids.size(), scan->size()) << "duplicate local ids";
  uint64_t expect = 1;
  for (uint64_t id : ids) {
    ASSERT_EQ(id, expect) << "id space has a hole: committed prefix broken";
    ++expect;
  }
  uint64_t k = ids.empty() ? 0 : *ids.rbegin();
  EXPECT_GE(k, max_acked_id)
      << "an acknowledged commit vanished after kill -9";

  // Payloads are bit-exact per the deterministic generator.
  for (Oid oid : *scan) {
    Result<ObjectBuffer> buffer = db->GetObject(oid);
    ASSERT_TRUE(buffer.ok()) << buffer.status().ToString();
    const Value* idx = buffer->value.FindField("idx");
    const Value* payload = buffer->value.FindField("payload");
    ASSERT_NE(idx, nullptr);
    ASSERT_NE(payload, nullptr);
    ASSERT_EQ(payload->AsString(), PayloadFor(idx->AsInt()))
        << "object " << oid.local << " corrupted";
  }
  *max_surviving_id = k;
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  std::string NewDbPath(const char* tag) {
    std::string path = testing::TempDir() + "/ode_crash_" + tag + ".db";
    std::remove(path.c_str());
    std::remove((path + ".wal").c_str());
    return path;
  }

  /// One lineage: `trials` kill/reopen cycles against one database.
  /// `torn` additionally mutates the WAL tail past the durable
  /// watermark before reopening.
  void RunLineage(const char* tag, int trials, int threads,
                  uint64_t checkpoint_bytes, bool immediate_kill,
                  bool torn, uint64_t seed) {
    std::string path = NewDbPath(tag);
    std::mt19937_64 rng(seed);
    uint64_t max_acked = 0;
    int completed = 0;
    int attempts = 0;
    while (completed < trials && attempts < trials * 3) {
      ++attempts;
      const int kill_after =
          immediate_kill ? 0 : 1 + static_cast<int>(rng() % 40);
      const unsigned sleep_us = static_cast<unsigned>(rng() % 8000);
      std::printf("[lineage %s] trial %d seed=%llu kill_after=%d "
                  "sleep_us=%u\n",
                  tag, completed, static_cast<unsigned long long>(seed),
                  kill_after, sleep_us);
      TrialOutcome outcome =
          SpawnAndKill(path, threads, checkpoint_bytes, kill_after, sleep_us);
      if (!outcome.ready) {
        // Killed before creation was acknowledged: the database never
        // existed as far as any client knows. Start over.
        std::remove(path.c_str());
        std::remove((path + ".wal").c_str());
        max_acked = 0;
        continue;
      }
      if (outcome.max_acked_id > max_acked) max_acked = outcome.max_acked_id;

      if (torn && outcome.durable_monotone) {
        InjectTornTail(path + ".wal", outcome.durable_offset, &rng);
      }

      uint64_t surviving = 0;
      VerifyRecovered(path, max_acked, &surviving);
      if (::testing::Test::HasFatalFailure()) return;
      // Later trials append after the survivors; acked ids stay
      // covered because ids continue from the surviving watermark.
      max_acked = surviving;
      ++completed;
    }
    EXPECT_EQ(completed, trials) << "too many pre-READY kills";
    std::remove(path.c_str());
    std::remove((path + ".wal").c_str());
  }

  /// Corrupts the WAL strictly past `durable_offset`: everything at or
  /// past the acknowledged durable watermark may legally be torn by a
  /// power cut. Recovery must truncate, never propagate.
  void InjectTornTail(const std::string& wal_path, uint64_t durable_offset,
                      std::mt19937_64* rng) {
    int fd = ::open(wal_path.c_str(), O_RDWR);
    if (fd < 0) return;
    off_t size = ::lseek(fd, 0, SEEK_END);
    if (size < 0 || static_cast<uint64_t>(size) <= durable_offset) {
      ::close(fd);
      return;  // nothing past the watermark to tear
    }
    const uint64_t span = static_cast<uint64_t>(size) - durable_offset;
    if ((*rng)() % 2 == 0) {
      // Truncate to a random point at or past the watermark.
      uint64_t keep = durable_offset + (*rng)() % (span + 1);
      EXPECT_EQ(::ftruncate(fd, static_cast<off_t>(keep)), 0);
    } else {
      // Flip one byte in the un-acknowledged tail.
      uint64_t at = durable_offset + (*rng)() % span;
      char byte = 0;
      EXPECT_EQ(::pread(fd, &byte, 1, static_cast<off_t>(at)), 1);
      byte = static_cast<char>(byte ^ 0x5a);
      EXPECT_EQ(::pwrite(fd, &byte, 1, static_cast<off_t>(at)), 1);
    }
    ::close(fd);
  }
};

TEST_F(CrashRecoveryTest, SingleWriterRandomKillPoints) {
  RunLineage("single", 20, /*threads=*/1, /*checkpoint_bytes=*/4u << 20,
             /*immediate_kill=*/false, /*torn=*/false, /*seed=*/0xA1);
}

TEST_F(CrashRecoveryTest, FrequentCheckpointsSurviveKills) {
  // A tiny checkpoint threshold makes kills land inside the two-phase
  // checkpoint (flush, quiesce, log reset) with high probability.
  RunLineage("ckpt", 20, /*threads=*/1, /*checkpoint_bytes=*/32u << 10,
             /*immediate_kill=*/false, /*torn=*/false, /*seed=*/0xB2);
}

TEST_F(CrashRecoveryTest, TornWalTailsTruncateCleanly) {
  // No auto-checkpoints: the durable watermark only grows, so every
  // byte past it is fair game for the torn-tail injector.
  RunLineage("torn", 20, /*threads=*/1, /*checkpoint_bytes=*/1u << 30,
             /*immediate_kill=*/false, /*torn=*/true, /*seed=*/0xC3);
}

TEST_F(CrashRecoveryTest, MultiWriterGroupCommitKills) {
  // Four sessions share group-commit fsyncs; the killed leader must
  // never take acknowledged followers with it.
  RunLineage("multi", 20, /*threads=*/4, /*checkpoint_bytes=*/4u << 20,
             /*immediate_kill=*/false, /*torn=*/false, /*seed=*/0xD4);
}

/// Minimal loopback GET for the /healthz assertion below.
std::string HttpGet(uint16_t port, const char* path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request = std::string("GET ") + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(CrashRecoveryTest, HealthzReportsRecoveryAfterCrash) {
  // One kill/reopen cycle, then the operator's view: /healthz must say
  // restart recovery ran and committed transactions were replayed —
  // the CI crash-recovery job curls this exact surface.
  std::string path = NewDbPath("healthz");
  TrialOutcome outcome = SpawnAndKill(path, /*threads=*/1,
                                      /*checkpoint_bytes=*/1u << 30,
                                      /*kill_after_acks=*/20,
                                      /*sleep_us=*/0);
  ASSERT_TRUE(outcome.ready);
  ASSERT_GT(outcome.max_acked_id, 0u);

  auto reopened = Database::OpenOnDisk(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();

  obs::TelemetryServer server;
  ASSERT_TRUE(server.Start(/*port=*/0).ok());
  std::string health = HttpGet(server.port(), "/healthz");
  server.Stop();

  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("application/json"), std::string::npos);
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);
  // Recovery ran in *this* process (the reopen above), so the counters
  // behind the health document are nonzero.
  EXPECT_EQ(health.find("\"recovery_runs\":0"), std::string::npos) << health;
  EXPECT_NE(health.find("\"recovery_runs\":"), std::string::npos);
  EXPECT_EQ(health.find("\"committed_txns\":0"), std::string::npos) << health;
  EXPECT_NE(health.find("\"pages_redone\":"), std::string::npos);
  EXPECT_NE(health.find("\"torn_bytes\":"), std::string::npos);

  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

TEST_F(CrashRecoveryTest, ReclusterKillPointsKeepEveryObject) {
  // Kills land mid-recluster (after N completed rounds plus a random
  // sleep) or mid-seed (kill_after=0). The reorganizer runs one WAL
  // transaction per page group, so recovery lands on a group boundary:
  // every committed object stays readable with a bit-exact payload,
  // and the id space keeps its no-holes/no-duplicates shape (a lost or
  // doubled record after a crashed move would trip VerifyRecovered's
  // prefix and payload checks).
  std::string path = NewDbPath("recluster");
  std::mt19937_64 rng(0xF6);
  uint64_t max_acked = 0;  ///< record ids, not recluster rounds
  int completed = 0;
  int attempts = 0;
  while (completed < 12 && attempts < 36) {
    ++attempts;
    const bool mid_seed = rng() % 5 == 0;
    const int kill_after = mid_seed ? 0 : 1 + static_cast<int>(rng() % 5);
    const unsigned sleep_us = static_cast<unsigned>(rng() % 8000);
    std::printf("[lineage recluster] trial %d kill_after=%d sleep_us=%u\n",
                completed, kill_after, sleep_us);
    TrialOutcome outcome =
        SpawnAndKill(path, /*threads=*/0, /*checkpoint_bytes=*/256u << 10,
                     kill_after, sleep_us, "--recluster-child");
    if (!outcome.ready) {
      std::remove(path.c_str());
      std::remove((path + ".wal").c_str());
      max_acked = 0;
      continue;
    }
    // An ack means the child finished seeding before its first
    // recluster: all 200 records were committed and must survive
    // every kill from here on.
    if (outcome.acks > 0 && max_acked < 200) max_acked = 200;
    uint64_t surviving = 0;
    VerifyRecovered(path, max_acked, &surviving);
    if (::testing::Test::HasFatalFailure()) return;
    max_acked = surviving;
    ++completed;
  }
  EXPECT_EQ(completed, 12) << "too many pre-READY kills";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

TEST_F(CrashRecoveryTest, ImmediateKillAfterOpen) {
  // Kill straight after the handshake: crashes land during the first
  // commits and — on later trials — right after restart recovery
  // finished (recovery of a freshly recovered database).
  RunLineage("instant", 20, /*threads=*/1, /*checkpoint_bytes=*/4u << 20,
             /*immediate_kill=*/true, /*torn=*/false, /*seed=*/0xE5);
}

}  // namespace
}  // namespace ode::odb

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--crash-child") == 0) {
    if (argc < 5) return 64;
    return ode::odb::RunCrashChild(
        argv[2], std::atoi(argv[3]),
        std::strtoull(argv[4], nullptr, 10));
  }
  if (argc >= 2 && std::strcmp(argv[1], "--recluster-child") == 0) {
    if (argc < 5) return 64;
    return ode::odb::RunReclusterChild(
        argv[2], std::strtoull(argv[4], nullptr, 10));
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
