#ifndef ODEVIEW_ODB_DDL_PARSER_H_
#define ODEVIEW_ODB_DDL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "odb/schema.h"

namespace ode::odb {

/// Parses an O++-subset schema definition into a `Schema`.
///
/// The grammar covers the slice of O++ that OdeView needs: class
/// definitions with multiple inheritance, access sections, data members
/// of scalar / string / blob / embedded / reference / set / array types,
/// method signatures (metadata only), and the OdeView-protocol clauses
/// `display`, `displaylist`, `selectlist`, `constraint`, and `trigger`:
///
/// ```
/// persistent class employee : public person {
/// public:
///   string name;
///   int age;
///   department* dept;          // reference to another persistent object
///   set<employee*> peers;      // set of references
///   int scores[4];             // fixed array
///   void raise_salary(int pct);
///   display text, picture;
///   displaylist name, age, salary;
///   selectlist name, age;
///   constraint age >= 0;
///   trigger big_raise: on_update when salary > 100000 do alert;
/// private:
///   real salary;
/// };
/// ```
///
/// Each class's verbatim source text is captured into `ClassDef::source`
/// so the class-definition window (paper Fig. 4) can show it unchanged.
Result<Schema> ParseSchema(std::string_view source);

/// Parses a single class definition (convenience for tests/tools).
Result<ClassDef> ParseClassDef(std::string_view source);

}  // namespace ode::odb

#endif  // ODEVIEW_ODB_DDL_PARSER_H_
