// Edge-case coverage across modules: lexer corner cases, predicate
// containers, catalog limits, widget clipping, and app-level lookups.

#include <gtest/gtest.h>

#include "odb/database.h"
#include "odb/lexer.h"
#include "odb/predicate.h"
#include "odeview/app.h"
#include "owl/widgets.h"

namespace ode::odb {
namespace {

// --- Lexer ------------------------------------------------------------

TEST(LexerTest, StringEscapes) {
  Lexer lexer(R"("a\"b" "tab\there" "nl\nline" "back\\slash")");
  std::vector<Token> tokens = *lexer.Tokenize();
  ASSERT_EQ(tokens.size(), 5u);  // 4 strings + end
  EXPECT_EQ(tokens[0].text, "a\"b");
  EXPECT_EQ(tokens[1].text, "tab\there");
  EXPECT_EQ(tokens[2].text, "nl\nline");
  EXPECT_EQ(tokens[3].text, "back\\slash");
}

TEST(LexerTest, NumbersAndOperators) {
  Lexer lexer("3.5e-2 42 .5 >= == && || -> ::");
  std::vector<Token> tokens = *lexer.Tokenize();
  EXPECT_EQ(tokens[0].kind, TokenKind::kReal);
  EXPECT_EQ(tokens[1].kind, TokenKind::kInt);
  EXPECT_EQ(tokens[2].kind, TokenKind::kReal);
  EXPECT_EQ(tokens[2].text, ".5");
  for (int i = 3; i <= 8; ++i) {
    EXPECT_EQ(tokens[static_cast<size_t>(i)].kind, TokenKind::kPunct);
  }
  EXPECT_EQ(tokens[3].text, ">=");
  EXPECT_EQ(tokens[7].text, "->");
}

TEST(LexerTest, LineNumbersTracked) {
  Lexer lexer("a\nb\n  c");
  std::vector<Token> tokens = *lexer.Tokenize();
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 3);
}

TEST(LexerTest, RejectsStrayCharacters) {
  EXPECT_FALSE(Lexer("a $ b").Tokenize().ok());
  EXPECT_FALSE(Lexer("a ` b").Tokenize().ok());
}

TEST(LexerTest, CursorRewind) {
  Lexer lexer("a b c");
  TokenCursor cursor(*lexer.Tokenize());
  (void)cursor.Next();
  size_t mark = cursor.position();
  (void)cursor.Next();
  EXPECT_EQ(cursor.Peek().text, "c");
  cursor.Rewind(mark);
  EXPECT_EQ(cursor.Peek().text, "b");
}

// --- Predicates over containers ------------------------------------------

TEST(PredicateEdgeTest, ContainsOnArraysAndNumericSets) {
  Value obj = Value::Struct({
      {"scores", Value::Array({Value::Int(3), Value::Int(7)})},
      {"reals", Value::Set({Value::Real(1.5)})},
  });
  EXPECT_TRUE(*ParsePredicate("scores contains 7")->Evaluate(obj));
  EXPECT_FALSE(*ParsePredicate("scores contains 8")->Evaluate(obj));
  EXPECT_TRUE(*ParsePredicate("reals contains 1.5")->Evaluate(obj));
}

TEST(PredicateEdgeTest, ContainsOnScalarIsError) {
  Value obj = Value::Struct({{"n", Value::Int(3)}});
  EXPECT_FALSE(ParsePredicate("n contains 3")->Evaluate(obj).ok());
}

TEST(PredicateEdgeTest, NullComparesEqualOnlyToNull) {
  Value obj = Value::Struct({{"maybe", Value::Null()}});
  EXPECT_TRUE(*ParsePredicate("maybe == null")->Evaluate(obj));
  EXPECT_FALSE(*ParsePredicate("maybe == 3")->Evaluate(obj));
}

// --- Value paths ------------------------------------------------------------

TEST(ValueEdgeTest, FindPathOnNonStruct) {
  EXPECT_EQ(Value::Int(3).FindPath("a"), nullptr);
  Value obj = Value::Struct({{"a", Value::Int(1)}});
  EXPECT_EQ(obj.FindPath(""), nullptr);
  EXPECT_EQ(obj.FindPath("a"), obj.FindField("a"));
}

// --- Database lookups ----------------------------------------------------------

TEST(DatabaseEdgeTest, ClusterNameMapping) {
  auto db = std::move(*Database::CreateInMemory("t"));
  ASSERT_TRUE(db->DefineSchema("class a { public: int x; };").ok());
  ClusterId id = *db->ClusterOf("a");
  EXPECT_EQ(*db->ClassOfCluster(id), "a");
  EXPECT_TRUE(db->ClassOfCluster(999).status().IsNotFound());
  EXPECT_TRUE(db->GetObject(Oid{999, 1}).status().IsNotFound());
}

TEST(DatabaseEdgeTest, EmptyClusterSequencing) {
  auto db = std::move(*Database::CreateInMemory("t"));
  ASSERT_TRUE(db->DefineSchema("class a { public: int x; };").ok());
  EXPECT_TRUE(db->FirstObject("a").status().IsNotFound());
  EXPECT_TRUE(db->LastObject("a").status().IsNotFound());
  EXPECT_TRUE(db->ScanCluster("a")->empty());
  EXPECT_TRUE(db->Select("a", Predicate::True())->empty());
}

TEST(DatabaseEdgeTest, DatabaseNameTooLongRejected) {
  std::string huge(5000, 'n');
  EXPECT_FALSE(Database::CreateInMemory(huge).ok());
}

}  // namespace
}  // namespace ode::odb

namespace ode::owl {
namespace {

TEST(WidgetEdgeTest, LabelClipsToWidth) {
  Framebuffer fb(10, 1);
  Label label("l", "abcdefghij");
  label.set_rect(Rect{0, 0, 4, 1});
  label.Render(&fb, Point{0, 0});
  EXPECT_EQ(fb.Row(0), "abcd      ");
}

TEST(WidgetEdgeTest, InvisibleWidgetsSkipRenderAndEvents) {
  Framebuffer fb(10, 2);
  int clicks = 0;
  Button button("b", "hit", [&](Button&) { ++clicks; });
  button.set_rect(Rect{0, 0, 6, 1});
  button.set_visible(false);
  button.Render(&fb, Point{0, 0});
  EXPECT_EQ(fb.Row(0), "          ");
  EXPECT_FALSE(button.DispatchClick(Point{1, 0}));
  EXPECT_EQ(clicks, 0);
}

TEST(WidgetEdgeTest, OverlappingChildrenTopmostWins) {
  Widget root("root");
  root.set_rect(Rect{0, 0, 20, 3});
  int first = 0, second = 0;
  auto* a = root.AddChild(std::make_unique<Button>(
      "a", "aaaa", [&](Button&) { ++first; }));
  a->set_rect(Rect{0, 0, 10, 1});
  auto* b = root.AddChild(std::make_unique<Button>(
      "b", "bbbb", [&](Button&) { ++second; }));
  b->set_rect(Rect{0, 0, 10, 1});  // fully overlaps a
  EXPECT_TRUE(root.DispatchClick(Point{2, 0}));
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);  // later-added child is on top
}

TEST(WidgetEdgeTest, PanelWithoutBorderRendersNothing) {
  Framebuffer fb(8, 3);
  Panel panel("p", "title");
  panel.set_border(false);
  panel.set_rect(Rect{0, 0, 8, 3});
  panel.Render(&fb, Point{0, 0});
  EXPECT_EQ(fb.ToString(), "        \n        \n        \n");
}

TEST(ServerEdgeTest, EventsForDestroyedWindowsIgnored) {
  Server server;
  Window* window = server.CreateWindow("w", Point{0, 0}, Size{10, 2});
  WindowId id = window->id();
  server.PostEvent(Event::MouseClick(id, Point{1, 1}));
  ASSERT_TRUE(server.DestroyWindow(id).ok());
  EXPECT_EQ(server.RunLoop(), 1);  // dispatched into the void, no crash
}

TEST(ServerEdgeTest, RunLoopRespectsEventLimit) {
  Server server;
  Window* window = server.CreateWindow("w", Point{0, 0}, Size{10, 2});
  for (int i = 0; i < 10; ++i) {
    server.PostEvent(Event::CloseRequest(window->id()));
  }
  EXPECT_EQ(server.RunLoop(3), 3);
  EXPECT_EQ(server.RunLoop(), 7);
}

}  // namespace
}  // namespace ode::owl

namespace ode::view {
namespace {

TEST(AppEdgeTest, DuplicateAndUnknownDatabases) {
  OdeViewApp app;
  auto db = std::move(*odb::Database::CreateInMemory("x"));
  ASSERT_TRUE(app.AddDatabaseBorrowed(db.get()).ok());
  EXPECT_EQ(app.AddDatabaseBorrowed(db.get()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(app.AddDatabaseBorrowed(nullptr).IsInvalidArgument());
  EXPECT_TRUE(app.OpenDatabase("ghost").status().IsNotFound());
  EXPECT_TRUE(app.FindDatabase("x").ok());
  EXPECT_EQ(app.DatabaseNames(), (std::vector<std::string>{"x"}));
}

TEST(AppEdgeTest, ReopenedDatabaseReusesInteractor) {
  OdeViewApp app;
  auto db = std::move(*odb::Database::CreateInMemory("x"));
  ASSERT_TRUE(db->DefineSchema("class a { public: int n; };").ok());
  ASSERT_TRUE(app.AddDatabaseBorrowed(db.get()).ok());
  DbInteractor* first = *app.OpenDatabase("x");
  DbInteractor* second = *app.OpenDatabase("x");
  EXPECT_EQ(first, second);
  size_t windows = app.server()->window_count();
  (void)*app.OpenDatabase("x");
  EXPECT_EQ(app.server()->window_count(), windows);
}

}  // namespace
}  // namespace ode::view
