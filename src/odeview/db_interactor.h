#ifndef ODEVIEW_ODEVIEW_DB_INTERACTOR_H_
#define ODEVIEW_ODEVIEW_DB_INTERACTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dynlink/linker.h"
#include "dynlink/repository.h"
#include "odb/database.h"
#include "odeview/browse_node.h"
#include "odeview/dag_view.h"
#include "odeview/display_state.h"
#include "odeview/join_view.h"
#include "owl/server.h"

namespace ode::view {

/// The per-database "db-interactor process" (paper §4.6): created when
/// the user selects a database icon; handles all schema-level
/// operations (the class-relationship window, class-information
/// windows, class-definition windows) and spawns object-interactors
/// (browse trees) for object-level browsing.
class DbInteractor {
 public:
  DbInteractor(owl::Server* server, dynlink::ModuleRepository* repository,
               DisplayStateRegistry* display_states, odb::Database* db);
  ~DbInteractor();

  DbInteractor(const DbInteractor&) = delete;
  DbInteractor& operator=(const DbInteractor&) = delete;

  const std::string& db_name() const { return db_->name(); }
  odb::Database* database() { return db_; }
  /// This interactor's database session: every window tree it spawns
  /// runs object operations through it, so two interactors over one
  /// database can browse from different threads concurrently.
  odb::Session* session() { return &session_; }
  dynlink::DynamicLinker* linker() { return &linker_; }
  BrowseContext* context() { return &context_; }

  // --- Schema window (Fig. 2) -----------------------------------------

  /// Opens (or raises) the class-relationship window showing the
  /// inheritance DAG laid out to minimize crossovers.
  Status OpenSchemaWindow();
  owl::WindowId schema_window() const { return schema_window_; }
  DagView* dag_view() { return dag_view_; }
  Status ZoomIn();
  Status ZoomOut();

  // --- Class information windows (Figs. 3 & 5) -------------------------

  /// Opens the class-information window: superclasses, subclasses, and
  /// metadata (object count), plus `definition` and `objects` buttons.
  Status OpenClassInfo(const std::string& class_name);
  owl::WindowId class_info_window(const std::string& class_name) const;

  // --- Class definition window (Fig. 4) --------------------------------

  Status OpenClassDefinition(const std::string& class_name);
  owl::WindowId class_def_window(const std::string& class_name) const;

  // --- Object browsing (object-interactors) ----------------------------

  /// Opens (or returns) the object-set browse tree for a class.
  Result<BrowseNode*> OpenObjectSet(const std::string& class_name);
  BrowseNode* FindObjectSet(const std::string& class_name);
  const std::vector<std::unique_ptr<BrowseNode>>& object_sets() const {
    return object_sets_;
  }
  /// Destroys the browse tree of a class (closing its windows).
  Status CloseObjectSet(const std::string& class_name);

  // --- Selection dialog (§5.2) ------------------------------------------

  /// Opens the predicate-construction window for a class: an attribute
  /// menu (the selectlist), an operator menu, a value field, AND/OR
  /// connectors, plus a QBE-style condition box. Applying installs the
  /// predicate on the class's object set.
  Status OpenSelectionDialog(const std::string& class_name);
  owl::WindowId selection_dialog(const std::string& class_name) const;
  /// Programmatic equivalents of the dialog's apply buttons.
  Status ApplyConditionBox(const std::string& class_name,
                           const std::string& condition);
  Status ClearSelection(const std::string& class_name);

  // --- Projection dialog (§5.1) ------------------------------------------

  /// Opens the attribute chooser: one toggle button per displaylist
  /// attribute plus ALL and apply.
  Status OpenProjectionDialog(const std::string& class_name);
  owl::WindowId projection_dialog(const std::string& class_name) const;

  // --- Join views (§5.3) ----------------------------------------------------

  /// Opens a view over the join of two classes. `condition` uses the
  /// predicate language with `left.<attr>` / `right.<attr>` paths.
  /// All objects involved in the join display simultaneously, each via
  /// its own class's display function.
  Result<JoinView*> OpenJoinView(const std::string& left_class,
                                 const std::string& right_class,
                                 const std::string& condition);
  const std::vector<std::unique_ptr<JoinView>>& join_views() const {
    return join_views_;
  }

  /// Closes (destroys) a join view previously returned by
  /// `OpenJoinView`, tearing down its windows. NotFound if `view` is
  /// not an open join view of this interactor.
  Status CloseJoinView(JoinView* view);

  // --- Privileged (debug) mode -----------------------------------------------

  /// When enabled, synthesized displays "selectively violate"
  /// encapsulation and show private members too (§4.1 item 3).
  void set_privileged(bool privileged);
  bool privileged() const;

  // --- Schema change handling --------------------------------------------

  /// Called when a class definition changed out-of-band: invalidates
  /// dynamically-loaded display functions and refreshes affected
  /// browse trees — no recompilation of OdeView (§4.5).
  Status OnClassChanged(const std::string& class_name);

 private:
  /// Appends a menu listing classes that opens class-info windows.
  void AddClassListMenu(owl::Widget* root, const std::string& widget_name,
                        const std::vector<std::string>& classes,
                        const owl::Rect& rect);

  owl::Server* server_;
  odb::Database* db_;
  dynlink::DynamicLinker linker_;
  odb::Session session_;
  BrowseContext context_;

  owl::WindowId schema_window_ = owl::kNoWindow;
  DagView* dag_view_ = nullptr;  // owned by the schema window's tree
  std::map<std::string, owl::WindowId> class_info_windows_;
  std::map<std::string, owl::WindowId> class_def_windows_;
  std::map<std::string, owl::WindowId> selection_dialogs_;
  std::map<std::string, owl::WindowId> projection_dialogs_;
  /// Per-class selection-builder state (conjuncts added so far).
  std::map<std::string, std::string> selection_drafts_;
  std::vector<std::unique_ptr<BrowseNode>> object_sets_;
  std::vector<std::unique_ptr<JoinView>> join_views_;
};

}  // namespace ode::view

#endif  // ODEVIEW_ODEVIEW_DB_INTERACTOR_H_
