#include "odb/schema.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "common/coding.h"

namespace ode::odb {

std::string_view AccessName(Access access) {
  switch (access) {
    case Access::kPublic:
      return "public";
    case Access::kProtected:
      return "protected";
    case Access::kPrivate:
      return "private";
  }
  return "?";
}

std::string_view TriggerEventName(TriggerEvent event) {
  switch (event) {
    case TriggerEvent::kCreate:
      return "on_create";
    case TriggerEvent::kUpdate:
      return "on_update";
    case TriggerEvent::kDelete:
      return "on_delete";
  }
  return "?";
}

std::string TypeRef::ToString() const {
  switch (kind) {
    case Kind::kVoid:
      return "void";
    case Kind::kBool:
      return "bool";
    case Kind::kInt:
      return "int";
    case Kind::kReal:
      return "real";
    case Kind::kString:
      return "string";
    case Kind::kBlob:
      return "blob";
    case Kind::kClass:
      return class_name;
    case Kind::kRef:
      return class_name + "*";
    case Kind::kSet:
      return "set<" + (element ? element->ToString() : "?") + ">";
    case Kind::kArray:
      return (element ? element->ToString() : "?") + "[" +
             (array_size ? std::to_string(array_size) : "") + "]";
  }
  return "?";
}

bool operator==(const TypeRef& a, const TypeRef& b) {
  if (a.kind != b.kind || a.class_name != b.class_name ||
      a.array_size != b.array_size) {
    return false;
  }
  if ((a.element == nullptr) != (b.element == nullptr)) return false;
  return a.element == nullptr || *a.element == *b.element;
}

const MemberDef* ClassDef::FindMember(std::string_view member_name) const {
  for (const MemberDef& m : members) {
    if (m.name == member_name) return &m;
  }
  return nullptr;
}

int Schema::IndexOf(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

void Schema::RebuildIndex() {
  index_.clear();
  for (size_t i = 0; i < classes_.size(); ++i) {
    index_[classes_[i].name] = static_cast<int>(i);
  }
}

Status Schema::AddClass(ClassDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("class name must be non-empty");
  }
  if (IndexOf(def.name) >= 0) {
    return Status::AlreadyExists("class '" + def.name + "' already defined");
  }
  index_[def.name] = static_cast<int>(classes_.size());
  classes_.push_back(std::move(def));
  return Status::OK();
}

namespace {
bool TypeMentionsClass(const TypeRef& type, std::string_view name) {
  if ((type.kind == TypeRef::Kind::kRef ||
       type.kind == TypeRef::Kind::kClass) &&
      type.class_name == name) {
    return true;
  }
  return type.element != nullptr && TypeMentionsClass(*type.element, name);
}
}  // namespace

Status Schema::DropClass(std::string_view name) {
  int idx = IndexOf(name);
  if (idx < 0) return Status::NotFound("class '" + std::string(name) + "'");
  for (const ClassDef& def : classes_) {
    if (def.name == name) continue;
    for (const std::string& base : def.bases) {
      if (base == name) {
        return Status::FailedPrecondition("class '" + def.name +
                                          "' derives from '" +
                                          std::string(name) + "'");
      }
    }
    for (const MemberDef& m : def.members) {
      if (TypeMentionsClass(m.type, name)) {
        return Status::FailedPrecondition(
            "class '" + def.name + "' member '" + m.name + "' references '" +
            std::string(name) + "'");
      }
    }
  }
  classes_.erase(classes_.begin() + idx);
  RebuildIndex();
  return Status::OK();
}

Status Schema::ReplaceClass(ClassDef def) {
  int idx = IndexOf(def.name);
  if (idx < 0) return Status::NotFound("class '" + def.name + "'");
  classes_[static_cast<size_t>(idx)] = std::move(def);
  return Status::OK();
}

bool Schema::Contains(std::string_view name) const {
  return IndexOf(name) >= 0;
}

Result<const ClassDef*> Schema::GetClass(std::string_view name) const {
  int idx = IndexOf(name);
  if (idx < 0) return Status::NotFound("class '" + std::string(name) + "'");
  return &classes_[static_cast<size_t>(idx)];
}

Result<std::vector<std::string>> Schema::DirectSuperclasses(
    std::string_view name) const {
  ODE_ASSIGN_OR_RETURN(const ClassDef* def, GetClass(name));
  return def->bases;
}

Result<std::vector<std::string>> Schema::DirectSubclasses(
    std::string_view name) const {
  if (!Contains(name)) {
    return Status::NotFound("class '" + std::string(name) + "'");
  }
  std::vector<std::string> subs;
  for (const ClassDef& def : classes_) {
    for (const std::string& base : def.bases) {
      if (base == name) {
        subs.push_back(def.name);
        break;
      }
    }
  }
  return subs;
}

namespace {
/// BFS over base (up=true) or derived (up=false) edges.
Result<std::vector<std::string>> Closure(const Schema& schema,
                                         std::string_view start, bool up) {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  std::deque<std::string> queue;
  queue.emplace_back(start);
  seen.insert(std::string(start));
  while (!queue.empty()) {
    std::string cur = std::move(queue.front());
    queue.pop_front();
    Result<std::vector<std::string>> next =
        up ? schema.DirectSuperclasses(cur) : schema.DirectSubclasses(cur);
    if (!next.ok()) {
      // A dangling base name: report only if it is the start class.
      if (cur == start) return next.status();
      continue;
    }
    for (const std::string& n : *next) {
      if (seen.insert(n).second) {
        out.push_back(n);
        queue.push_back(n);
      }
    }
  }
  return out;
}
}  // namespace

Result<std::vector<std::string>> Schema::Ancestors(
    std::string_view name) const {
  return Closure(*this, name, /*up=*/true);
}

Result<std::vector<std::string>> Schema::Descendants(
    std::string_view name) const {
  return Closure(*this, name, /*up=*/false);
}

Result<std::vector<MemberDef>> Schema::AllMembers(
    std::string_view name) const {
  ODE_ASSIGN_OR_RETURN(const ClassDef* def, GetClass(name));
  std::vector<MemberDef> out;
  std::unordered_set<std::string> seen;  // derived shadows base
  // Collect own members first to know which base members are shadowed,
  // but emit base members first (base-first declaration order).
  for (const MemberDef& m : def->members) seen.insert(m.name);
  for (const std::string& base : def->bases) {
    Result<std::vector<MemberDef>> inherited = AllMembers(base);
    if (!inherited.ok()) continue;  // dangling base: tolerated here
    for (MemberDef& m : *inherited) {
      if (seen.insert(m.name).second) out.push_back(std::move(m));
    }
  }
  for (const MemberDef& m : def->members) out.push_back(m);
  return out;
}

namespace {
/// Returns the class's own list, or the first non-empty list found on
/// a breadth-first walk of its bases.
Result<std::vector<std::string>> EffectiveList(
    const Schema& schema, std::string_view name,
    const std::vector<std::string> ClassDef::* list) {
  ODE_ASSIGN_OR_RETURN(const ClassDef* def, schema.GetClass(name));
  if (!(def->*list).empty()) return def->*list;
  std::deque<std::string> queue(def->bases.begin(), def->bases.end());
  std::unordered_set<std::string> seen(def->bases.begin(), def->bases.end());
  while (!queue.empty()) {
    std::string cur = std::move(queue.front());
    queue.pop_front();
    Result<const ClassDef*> base = schema.GetClass(cur);
    if (!base.ok()) continue;
    if (!((*base)->*list).empty()) return (*base)->*list;
    for (const std::string& b : (*base)->bases) {
      if (seen.insert(b).second) queue.push_back(b);
    }
  }
  return std::vector<std::string>{};
}
}  // namespace

Result<std::vector<std::string>> Schema::EffectiveDisplayFormats(
    std::string_view name) const {
  return EffectiveList(*this, name, &ClassDef::display_formats);
}

Result<std::vector<std::string>> Schema::EffectiveDisplayList(
    std::string_view name) const {
  return EffectiveList(*this, name, &ClassDef::displaylist);
}

Result<std::vector<std::string>> Schema::EffectiveSelectList(
    std::string_view name) const {
  return EffectiveList(*this, name, &ClassDef::selectlist);
}

std::vector<std::pair<std::string, std::string>> Schema::InheritanceEdges()
    const {
  std::vector<std::pair<std::string, std::string>> edges;
  for (const ClassDef& def : classes_) {
    for (const std::string& base : def.bases) {
      edges.emplace_back(base, def.name);
    }
  }
  return edges;
}

namespace {
Status CheckTypeResolves(const Schema& schema, const ClassDef& def,
                         const MemberDef& member, const TypeRef& type) {
  if (type.kind == TypeRef::Kind::kRef ||
      type.kind == TypeRef::Kind::kClass) {
    if (!schema.Contains(type.class_name)) {
      return Status::InvalidArgument("class '" + def.name + "' member '" +
                                     member.name +
                                     "' references unknown class '" +
                                     type.class_name + "'");
    }
  }
  if (type.element != nullptr) {
    return CheckTypeResolves(schema, def, member, *type.element);
  }
  return Status::OK();
}
}  // namespace

Status Schema::Validate() const {
  // Duplicate members and resolvable bases/types.
  for (const ClassDef& def : classes_) {
    std::unordered_set<std::string> names;
    for (const MemberDef& m : def.members) {
      if (!names.insert(m.name).second) {
        return Status::InvalidArgument("class '" + def.name +
                                       "' has duplicate member '" + m.name +
                                       "'");
      }
      ODE_RETURN_IF_ERROR(CheckTypeResolves(*this, def, m, m.type));
    }
    for (const std::string& base : def.bases) {
      if (!Contains(base)) {
        return Status::InvalidArgument("class '" + def.name +
                                       "' derives from unknown class '" +
                                       base + "'");
      }
      if (base == def.name) {
        return Status::InvalidArgument("class '" + def.name +
                                       "' derives from itself");
      }
    }
  }
  // Acyclicity via repeated removal of classes with no unprocessed bases.
  std::unordered_map<std::string, int> in_degree;
  std::unordered_map<std::string, std::vector<std::string>> children;
  for (const ClassDef& def : classes_) {
    in_degree.try_emplace(def.name, 0);
    for (const std::string& base : def.bases) {
      ++in_degree[def.name];
      children[base].push_back(def.name);
    }
  }
  std::deque<std::string> ready;
  for (const auto& [name, deg] : in_degree) {
    if (deg == 0) ready.push_back(name);
  }
  size_t processed = 0;
  while (!ready.empty()) {
    std::string cur = std::move(ready.front());
    ready.pop_front();
    ++processed;
    for (const std::string& child : children[cur]) {
      if (--in_degree[child] == 0) ready.push_back(child);
    }
  }
  if (processed != classes_.size()) {
    return Status::InvalidArgument("inheritance graph contains a cycle");
  }
  return Status::OK();
}

namespace {

void EncodeTypeRef(const TypeRef& type, std::string* dst) {
  dst->push_back(static_cast<char>(type.kind));
  PutLengthPrefixed(dst, type.class_name);
  PutVarint32(dst, type.array_size);
  dst->push_back(type.element ? 1 : 0);
  if (type.element) EncodeTypeRef(*type.element, dst);
}

Result<TypeRef> DecodeTypeRef(Decoder* decoder) {
  std::string_view raw;
  ODE_RETURN_IF_ERROR(decoder->GetRaw(1, &raw));
  TypeRef type;
  type.kind = static_cast<TypeRef::Kind>(static_cast<uint8_t>(raw[0]));
  std::string_view name;
  ODE_RETURN_IF_ERROR(decoder->GetLengthPrefixed(&name));
  type.class_name = std::string(name);
  ODE_RETURN_IF_ERROR(decoder->GetVarint32(&type.array_size));
  ODE_RETURN_IF_ERROR(decoder->GetRaw(1, &raw));
  if (raw[0]) {
    ODE_ASSIGN_OR_RETURN(TypeRef element, DecodeTypeRef(decoder));
    type.element = std::make_shared<TypeRef>(std::move(element));
  }
  return type;
}

void EncodeStringList(const std::vector<std::string>& list,
                      std::string* dst) {
  PutVarint64(dst, list.size());
  for (const std::string& s : list) PutLengthPrefixed(dst, s);
}

Result<std::vector<std::string>> DecodeStringList(Decoder* decoder) {
  uint64_t n = 0;
  ODE_RETURN_IF_ERROR(decoder->GetVarint64(&n));
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    std::string_view s;
    ODE_RETURN_IF_ERROR(decoder->GetLengthPrefixed(&s));
    out.emplace_back(s);
  }
  return out;
}

void EncodeClassDef(const ClassDef& def, std::string* dst) {
  PutLengthPrefixed(dst, def.name);
  dst->push_back(def.persistent ? 1 : 0);
  dst->push_back(def.versioned ? 1 : 0);
  EncodeStringList(def.bases, dst);
  PutVarint64(dst, def.members.size());
  for (const MemberDef& m : def.members) {
    PutLengthPrefixed(dst, m.name);
    EncodeTypeRef(m.type, dst);
    dst->push_back(static_cast<char>(m.access));
  }
  PutVarint64(dst, def.methods.size());
  for (const MethodDef& m : def.methods) {
    PutLengthPrefixed(dst, m.name);
    PutLengthPrefixed(dst, m.return_type);
    PutLengthPrefixed(dst, m.params);
    dst->push_back(static_cast<char>(m.access));
  }
  EncodeStringList(def.display_formats, dst);
  EncodeStringList(def.displaylist, dst);
  EncodeStringList(def.selectlist, dst);
  PutVarint64(dst, def.constraints.size());
  for (const ConstraintDef& c : def.constraints) {
    PutLengthPrefixed(dst, c.predicate_text);
  }
  PutVarint64(dst, def.triggers.size());
  for (const TriggerDef& t : def.triggers) {
    PutLengthPrefixed(dst, t.name);
    dst->push_back(static_cast<char>(t.event));
    PutLengthPrefixed(dst, t.condition_text);
    PutLengthPrefixed(dst, t.action);
  }
  PutLengthPrefixed(dst, def.source);
}

Result<ClassDef> DecodeClassDef(Decoder* decoder) {
  ClassDef def;
  std::string_view s;
  std::string_view raw;
  ODE_RETURN_IF_ERROR(decoder->GetLengthPrefixed(&s));
  def.name = std::string(s);
  ODE_RETURN_IF_ERROR(decoder->GetRaw(1, &raw));
  def.persistent = raw[0] != 0;
  ODE_RETURN_IF_ERROR(decoder->GetRaw(1, &raw));
  def.versioned = raw[0] != 0;
  ODE_ASSIGN_OR_RETURN(def.bases, DecodeStringList(decoder));
  uint64_t n = 0;
  ODE_RETURN_IF_ERROR(decoder->GetVarint64(&n));
  for (uint64_t i = 0; i < n; ++i) {
    MemberDef m;
    ODE_RETURN_IF_ERROR(decoder->GetLengthPrefixed(&s));
    m.name = std::string(s);
    ODE_ASSIGN_OR_RETURN(m.type, DecodeTypeRef(decoder));
    ODE_RETURN_IF_ERROR(decoder->GetRaw(1, &raw));
    m.access = static_cast<Access>(static_cast<uint8_t>(raw[0]));
    def.members.push_back(std::move(m));
  }
  ODE_RETURN_IF_ERROR(decoder->GetVarint64(&n));
  for (uint64_t i = 0; i < n; ++i) {
    MethodDef m;
    ODE_RETURN_IF_ERROR(decoder->GetLengthPrefixed(&s));
    m.name = std::string(s);
    ODE_RETURN_IF_ERROR(decoder->GetLengthPrefixed(&s));
    m.return_type = std::string(s);
    ODE_RETURN_IF_ERROR(decoder->GetLengthPrefixed(&s));
    m.params = std::string(s);
    ODE_RETURN_IF_ERROR(decoder->GetRaw(1, &raw));
    m.access = static_cast<Access>(static_cast<uint8_t>(raw[0]));
    def.methods.push_back(std::move(m));
  }
  ODE_ASSIGN_OR_RETURN(def.display_formats, DecodeStringList(decoder));
  ODE_ASSIGN_OR_RETURN(def.displaylist, DecodeStringList(decoder));
  ODE_ASSIGN_OR_RETURN(def.selectlist, DecodeStringList(decoder));
  ODE_RETURN_IF_ERROR(decoder->GetVarint64(&n));
  for (uint64_t i = 0; i < n; ++i) {
    ODE_RETURN_IF_ERROR(decoder->GetLengthPrefixed(&s));
    def.constraints.push_back({std::string(s)});
  }
  ODE_RETURN_IF_ERROR(decoder->GetVarint64(&n));
  for (uint64_t i = 0; i < n; ++i) {
    TriggerDef t;
    ODE_RETURN_IF_ERROR(decoder->GetLengthPrefixed(&s));
    t.name = std::string(s);
    ODE_RETURN_IF_ERROR(decoder->GetRaw(1, &raw));
    t.event = static_cast<TriggerEvent>(static_cast<uint8_t>(raw[0]));
    ODE_RETURN_IF_ERROR(decoder->GetLengthPrefixed(&s));
    t.condition_text = std::string(s);
    ODE_RETURN_IF_ERROR(decoder->GetLengthPrefixed(&s));
    t.action = std::string(s);
    def.triggers.push_back(std::move(t));
  }
  ODE_RETURN_IF_ERROR(decoder->GetLengthPrefixed(&s));
  def.source = std::string(s);
  return def;
}

}  // namespace

void Schema::Encode(std::string* dst) const {
  PutVarint64(dst, classes_.size());
  for (const ClassDef& def : classes_) EncodeClassDef(def, dst);
}

Result<Schema> Schema::Decode(Decoder* decoder) {
  uint64_t n = 0;
  ODE_RETURN_IF_ERROR(decoder->GetVarint64(&n));
  Schema schema;
  for (uint64_t i = 0; i < n; ++i) {
    ODE_ASSIGN_OR_RETURN(ClassDef def, DecodeClassDef(decoder));
    ODE_RETURN_IF_ERROR(schema.AddClass(std::move(def)));
  }
  return schema;
}

Result<Schema> Schema::Decode(std::string_view bytes) {
  Decoder decoder(bytes);
  ODE_ASSIGN_OR_RETURN(Schema schema, Decode(&decoder));
  if (!decoder.empty()) {
    return Status::Corruption("trailing bytes after schema");
  }
  return schema;
}

}  // namespace ode::odb
